//! Off-chip and on-chip memory models (paper §IV-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An off-chip memory system: sustained bandwidth plus access energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DramSpec {
    /// Display name ("DDR4" / "HBM2").
    pub name: &'static str,
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gb_s: f64,
    /// Access energy in pJ per bit.
    pub energy_pj_per_bit: f64,
}

impl DramSpec {
    /// The paper's moderate-bandwidth system: DDR4, 16 GB/s, 15 pJ/bit.
    #[must_use]
    pub fn ddr4() -> Self {
        DramSpec {
            name: "DDR4",
            bandwidth_gb_s: 16.0,
            energy_pj_per_bit: 15.0,
        }
    }

    /// The paper's high-bandwidth system: HBM2, 256 GB/s, 1.2 pJ/bit.
    #[must_use]
    pub fn hbm2() -> Self {
        DramSpec {
            name: "HBM2",
            bandwidth_gb_s: 256.0,
            energy_pj_per_bit: 1.2,
        }
    }

    /// An ad-hoc memory system (bandwidth sweeps, hypothetical stacks).
    ///
    /// The name doubles as the memory's identity inside a
    /// [`crate::Scenario`], so give distinct sweeps distinct names.
    #[must_use]
    pub fn custom(name: &'static str, bandwidth_gb_s: f64, energy_pj_per_bit: f64) -> Self {
        DramSpec {
            name,
            bandwidth_gb_s,
            energy_pj_per_bit,
        }
    }

    /// Transfer time for `bytes` at the sustained bandwidth, seconds.
    #[must_use]
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gb_s * 1e9)
    }

    /// Access energy for `bytes`, joules.
    #[must_use]
    pub fn access_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.energy_pj_per_bit * 1e-12
    }
}

/// Interns a memory name for the life of the process, so repeated
/// deserialization of the same custom name costs one allocation total (the
/// pool grows with *distinct* names, not with parse count).
fn intern_name(name: String) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("memory-name intern pool poisoned");
    if let Some(&interned) = pool.iter().find(|&&s| s == name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    pool.push(leaked);
    leaked
}

/// Hand-written because `name` is a `&'static str`: the two paper systems
/// deserialize to their literal names, anything else to a process-lifetime
/// interned string. This lets `Scenario` specs round-trip through JSON.
impl serde::de::Deserialize for DramSpec {
    fn deserialize(value: &serde::de::Value) -> Result<Self, serde::de::Error> {
        let name: String = value.field("name")?;
        let name: &'static str = match name.as_str() {
            "DDR4" => "DDR4",
            "HBM2" => "HBM2",
            _ => intern_name(name),
        };
        Ok(DramSpec {
            name,
            bandwidth_gb_s: value.field("bandwidth_gb_s")?,
            energy_pj_per_bit: value.field("energy_pj_per_bit")?,
        })
    }
}

impl fmt::Display for DramSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} GB/s, {} pJ/bit)",
            self.name, self.bandwidth_gb_s, self.energy_pj_per_bit
        )
    }
}

/// The on-chip scratchpad shared by all three ASIC designs (Table II:
/// 112 KB). Access energy is folded into the 250 mW core budget, matching
/// the paper's accounting; the capacity gates the tiling optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScratchpadSpec {
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
}

impl ScratchpadSpec {
    /// Table II's 112 KB scratchpad.
    #[must_use]
    pub fn paper_default() -> Self {
        ScratchpadSpec {
            capacity_bytes: 112 * 1024,
        }
    }

    /// Half the capacity — the per-buffer share under double buffering
    /// (one half holds the working tiles, the other prefetches).
    #[must_use]
    pub fn working_bytes(&self) -> u64 {
        self.capacity_bytes / 2
    }
}

impl Default for ScratchpadSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_section_4a() {
        let d = DramSpec::ddr4();
        assert_eq!(d.bandwidth_gb_s, 16.0);
        assert_eq!(d.energy_pj_per_bit, 15.0);
        let h = DramSpec::hbm2();
        assert_eq!(h.bandwidth_gb_s, 256.0);
        assert_eq!(h.energy_pj_per_bit, 1.2);
    }

    #[test]
    fn hbm2_is_16x_faster_and_12x_cheaper_per_bit() {
        let (d, h) = (DramSpec::ddr4(), DramSpec::hbm2());
        assert_eq!(h.bandwidth_gb_s / d.bandwidth_gb_s, 16.0);
        assert!((d.energy_pj_per_bit / h.energy_pj_per_bit - 12.5).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_and_energy_scale_linearly() {
        let d = DramSpec::ddr4();
        assert!((d.transfer_time_s(16_000_000_000) - 1.0).abs() < 1e-12);
        // 1 byte = 8 bits x 15 pJ = 120 pJ.
        assert!((d.access_energy_j(1) - 120e-12).abs() < 1e-20);
    }

    #[test]
    fn deserialized_custom_names_are_interned_once() {
        let spec = DramSpec::custom("GDDR7-ish", 1024.0, 0.8);
        let json = serde_json::to_string(&spec).unwrap();
        let a: DramSpec = serde_json::from_str(&json).unwrap();
        let b: DramSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(a, spec);
        // Same pointer: repeated parses reuse the interned name.
        assert!(std::ptr::eq(a.name, b.name));
        let ddr4: DramSpec =
            serde_json::from_str(&serde_json::to_string(&DramSpec::ddr4()).unwrap()).unwrap();
        assert_eq!(ddr4, DramSpec::ddr4());
    }

    #[test]
    fn scratchpad_is_112kb_with_half_for_working_set() {
        let s = ScratchpadSpec::paper_default();
        assert_eq!(s.capacity_bytes, 114_688);
        assert_eq!(s.working_bytes(), 57_344);
    }
}
