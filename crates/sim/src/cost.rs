//! The shared, memoized layer cost model.
//!
//! Every consumer of the analytical model — [`crate::engine::simulate`], the
//! [`crate::scenario::Scenario`] grid runner, `bpvec-serve`'s batch cost
//! tables, [`crate::roofline()`] — ultimately asks the same question: *what
//! does one layer cost at one precision, batch size, platform and memory?*
//! The answer is a pure function of those inputs, and the tiling search
//! behind the traffic term is by far its most expensive part, so this module
//! centralizes the computation ([`layer_cost`]) and memoizes it
//! ([`CostModel`]).
//!
//! ## The memoization key
//!
//! An entry is keyed by **layer shape × precision × batch × platform ×
//! memory**, concretely:
//!
//! * the layer's [`LayerKind`] (its full geometry — *not* its name, so
//!   identically-shaped layers share entries: ResNet-50's repeated
//!   bottleneck convolutions, the same network appearing in several
//!   workloads, every replica of a serving cluster);
//! * the layer's `(act_bits, weight_bits)` precision;
//! * the whole-batch size;
//! * the platform fingerprint (design, unit count, clock, power budgets,
//!   scratchpad capacity — `f64` fields keyed by their exact bit patterns);
//! * the memory fingerprint (bandwidth and access energy bit patterns; the
//!   *name* is deliberately excluded, so two sweeps over numerically
//!   identical memories share entries).
//!
//! Below the full-cost memo sits a second, broader memo for the tiling
//! traffic alone, keyed by **layer shape × precision × batch × scratchpad
//! working set**: the tile search does not depend on compute units or
//! memory speed, so all Table II platforms (same 112 KB scratchpad) and
//! every memory system share one search per layer point.
//!
//! ## When entries are reused
//!
//! * **Across cells of a scenario grid** — the same workload evaluated on a
//!   second memory system reuses nothing *numerically* (memory is in the
//!   key) but the same workload on a second *platform with the same
//!   scratchpad* shares no entry either; sharing happens when the full key
//!   matches. The big structural wins are below.
//! * **Across batch sizes in serving cost tables** — each batch size is its
//!   own entry, but the table for max batch 16 fully contains the entries
//!   for max batch 4, so policies of different batch caps share work.
//! * **Across replicas, policies and clusters** — `bpvec-serve` builds one
//!   table per (backend, traffic) behind an `Arc` and every replica of
//!   every cluster cell reads the same entries.
//! * **Within one network** — repeated layer shapes (ResNet stages,
//!   Inception branches, the two identical recurrent layers) collapse to
//!   one entry each.
//!
//! Cached and uncached paths produce **bit-identical** results: the cache
//! stores the exact `f64`s [`layer_cost`] computes, and
//! [`CostModel::simulate`] aggregates them in the same order
//! [`crate::engine::simulate`] does. The `cost_model` criterion bench
//! measures the resulting sweep speedup and emits `BENCH_costmodel.json`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use bpvec_dnn::{Layer, LayerKind, Network};

use crate::accel::{AcceleratorConfig, Design};
use crate::engine::{Boundedness, LayerResult, NetworkResult, SimConfig};
use crate::memory::DramSpec;
use crate::tiling;

/// Everything the analytical model knows about one layer at one
/// (precision, batch, platform, memory) point. Whole-batch quantities,
/// mirroring [`LayerResult`] minus the layer name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// MACs executed (batch total).
    pub macs: u64,
    /// Compute time, seconds.
    pub compute_s: f64,
    /// DRAM traffic, bytes.
    pub traffic_bytes: u64,
    /// Memory time, seconds.
    pub memory_s: f64,
    /// Layer latency after double-buffered overlap: `max(compute, memory)`.
    pub latency_s: f64,
    /// Which side bounds the layer.
    pub bound: Boundedness,
    /// Core energy over the layer's latency, joules.
    pub core_energy_j: f64,
    /// DRAM access energy, joules.
    pub dram_energy_j: f64,
}

/// Computes one layer's cost from first principles (no cache).
///
/// This is *the* analytical model: [`crate::engine::simulate`] and
/// [`CostModel`] both call it, so cached and uncached paths cannot drift.
#[must_use]
pub fn layer_cost(layer: &Layer, accel: &AcceleratorConfig, dram: &DramSpec, b: u64) -> LayerCost {
    let traffic = tiling::layer_traffic(layer, accel.scratchpad.working_bytes(), b);
    layer_cost_from_traffic(layer, accel, dram, b, traffic)
}

/// The cheap tail of [`layer_cost`] once the tiled traffic is known — the
/// arithmetic both the cached and uncached paths share.
fn layer_cost_from_traffic(
    layer: &Layer,
    accel: &AcceleratorConfig,
    dram: &DramSpec,
    b: u64,
    traffic: u64,
) -> LayerCost {
    let core_power_w = (accel.core_power_mw + accel.sram_power_mw) * 1e-3;
    let macs = layer.macs() * b;
    let compute_s = if macs == 0 {
        0.0
    } else {
        macs as f64 / accel.macs_per_second(layer.act_bits, layer.weight_bits)
    };
    let memory_s = dram.transfer_time_s(traffic);
    let latency_s = compute_s.max(memory_s);
    let bound = if compute_s >= memory_s {
        Boundedness::Compute
    } else {
        Boundedness::Memory
    };
    // The core burns its budget for the whole layer (clock tree, SRAM and
    // leakage do not gate off while the layer waits on memory).
    let core_energy_j = core_power_w * latency_s;
    let dram_energy_j = dram.access_energy_j(traffic);
    LayerCost {
        macs,
        compute_s,
        traffic_bytes: traffic,
        memory_s,
        latency_s,
        bound,
        core_energy_j,
        dram_energy_j,
    }
}

/// Platform identity for the memo key. `f64` parameters key by bit
/// pattern: two configs hash equal exactly when every number is identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AccelKey {
    design: Design,
    mac_units: u64,
    freq_bits: u64,
    core_power_bits: u64,
    sram_power_bits: u64,
    scratchpad_bytes: u64,
}

impl AccelKey {
    fn of(accel: &AcceleratorConfig) -> Self {
        AccelKey {
            design: accel.design,
            mac_units: accel.mac_units,
            freq_bits: accel.freq_mhz.to_bits(),
            core_power_bits: accel.core_power_mw.to_bits(),
            sram_power_bits: accel.sram_power_mw.to_bits(),
            scratchpad_bytes: accel.scratchpad.capacity_bytes,
        }
    }
}

/// Memory identity for the memo key — numbers only, never the name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DramKey {
    bandwidth_bits: u64,
    energy_bits: u64,
}

impl DramKey {
    fn of(dram: &DramSpec) -> Self {
        DramKey {
            bandwidth_bits: dram.bandwidth_gb_s.to_bits(),
            energy_bits: dram.energy_pj_per_bit.to_bits(),
        }
    }
}

/// The full memo key: layer shape × precision × batch × platform × memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CostKey {
    kind: LayerKind,
    act_bits: u32,
    weight_bits: u32,
    batch: u64,
    accel: AccelKey,
    dram: DramKey,
}

/// The traffic-level key: the tiling search (the expensive part of a layer
/// cost) depends only on the layer shape, precision, batch, and scratchpad
/// working set — *not* on the platform's compute units or the memory's
/// speed. All three Table II platforms share a 112 KB scratchpad, so one
/// tiling search serves every platform and memory in a sweep.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TrafficKey {
    kind: LayerKind,
    act_bits: u32,
    weight_bits: u32,
    batch: u64,
    working_bytes: u64,
}

/// A thread-safe memo of [`layer_cost`] results; see the [module
/// docs](self) for the key and reuse characteristics.
///
/// One `CostModel` is meant to be *shared*: [`crate::Scenario`] creates one
/// per run and threads it through every cell, `bpvec-serve` shares one
/// across its whole platform × policy × cluster × traffic grid. Sharing is
/// what converts the duplicated per-consumer cost loops the seed had into
/// hash lookups.
#[derive(Debug, Default)]
pub struct CostModel {
    /// Full per-layer costs (layer × precision × batch × platform × memory).
    /// `RwLock`, not `Mutex`: warm grids are overwhelmingly read traffic
    /// from many rayon workers at once, and readers must not serialize.
    cache: RwLock<HashMap<CostKey, LayerCost>>,
    /// Tiling traffic (layer × precision × batch × scratchpad): shared
    /// across platforms and memories, so a cost miss on a new platform
    /// still skips the tiling search when any other platform with the same
    /// scratchpad saw the layer first.
    traffic: RwLock<HashMap<TrafficKey, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CostModel {
    /// An empty cost model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// One layer's cost, memoized.
    #[must_use]
    pub fn layer_cost(
        &self,
        layer: &Layer,
        accel: &AcceleratorConfig,
        dram: &DramSpec,
        batch: u64,
    ) -> LayerCost {
        let key = CostKey {
            kind: layer.kind,
            act_bits: layer.act_bits.bits(),
            weight_bits: layer.weight_bits.bits(),
            batch,
            accel: AccelKey::of(accel),
            dram: DramKey::of(dram),
        };
        if let Some(hit) = self
            .cache
            .read()
            .expect("cost-model cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        // Full-cost miss: the tiling traffic may still be cached from a
        // different platform or memory (it depends only on the scratchpad).
        // Everything is computed outside the locks: concurrent misses on
        // the same key may duplicate work, but the result is identical and
        // the tiling search never runs under a lock.
        let traffic = self.layer_traffic(layer, accel.scratchpad.working_bytes(), batch);
        let cost = layer_cost_from_traffic(layer, accel, dram, batch, traffic);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache
            .write()
            .expect("cost-model cache poisoned")
            .insert(key, cost);
        cost
    }

    /// One layer's tiled DRAM traffic, memoized across platforms/memories.
    fn layer_traffic(&self, layer: &Layer, working_bytes: u64, batch: u64) -> u64 {
        let key = TrafficKey {
            kind: layer.kind,
            act_bits: layer.act_bits.bits(),
            weight_bits: layer.weight_bits.bits(),
            batch,
            working_bytes,
        };
        if let Some(&hit) = self
            .traffic
            .read()
            .expect("cost-model traffic cache poisoned")
            .get(&key)
        {
            return hit;
        }
        let traffic = tiling::layer_traffic(layer, working_bytes, batch);
        self.traffic
            .write()
            .expect("cost-model traffic cache poisoned")
            .insert(key, traffic);
        traffic
    }

    /// Simulates a whole network through the memo — bit-identical to
    /// [`crate::engine::simulate`] (both aggregate [`layer_cost`] values in
    /// layer order).
    #[must_use]
    pub fn simulate(&self, network: &Network, config: &SimConfig) -> NetworkResult {
        let b = config.batching.batch_for(network.id);
        let mut layers = Vec::with_capacity(network.layers.len());
        let mut latency = 0.0f64;
        let mut energy = 0.0f64;
        for layer in &network.layers {
            let c = self.layer_cost(layer, &config.accel, &config.dram, b);
            latency += c.latency_s;
            energy += c.core_energy_j + c.dram_energy_j;
            layers.push(LayerResult {
                name: layer.name.clone(),
                macs: c.macs,
                compute_s: c.compute_s,
                traffic_bytes: c.traffic_bytes,
                memory_s: c.memory_s,
                latency_s: c.latency_s,
                bound: c.bound,
                core_energy_j: c.core_energy_j,
                dram_energy_j: c.dram_energy_j,
            });
        }
        NetworkResult {
            network: network.id,
            batch: b,
            layers,
            latency_s: latency / b as f64,
            energy_j: energy / b as f64,
            macs: network.total_macs(),
        }
    }

    /// Distinct entries currently cached.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.cache.read().expect("cost-model cache poisoned").len()
    }

    /// Lookups served from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records the memo's lookup counters into `registry` under `cost.*`:
    /// `cost.hits`/`cost.misses` accumulate as counters (several models can
    /// share one registry), `cost.entries` and `cost.hit_rate` are gauges
    /// reflecting this model's current state.
    pub fn record_metrics(&self, registry: &bpvec_obs::MetricsRegistry) {
        let hits = self.hits();
        let misses = self.misses();
        registry.counter_add("cost.hits", hits);
        registry.counter_add("cost.misses", misses);
        registry.gauge_set("cost.entries", self.entries() as f64);
        if hits + misses > 0 {
            registry.gauge_set("cost.hit_rate", hits as f64 / (hits + misses) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use bpvec_core::BitWidth;
    use bpvec_dnn::{BitwidthPolicy, NetworkId, PrecisionPolicy};

    fn cfg() -> SimConfig {
        SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4())
    }

    #[test]
    fn cached_simulation_is_bit_identical_to_the_engine() {
        for id in NetworkId::ALL {
            for policy in [
                PrecisionPolicy::homogeneous8(),
                PrecisionPolicy::heterogeneous(),
                PrecisionPolicy::uniform(BitWidth::INT2),
            ] {
                let net = Network::build_precise(id, &policy).unwrap();
                let model = CostModel::new();
                let cached = model.simulate(&net, &cfg());
                let direct = simulate(&net, &cfg());
                assert_eq!(cached, direct, "{id} {policy}");
                // A second pass serves entirely from the cache and still
                // matches.
                let again = model.simulate(&net, &cfg());
                assert_eq!(again, direct);
                assert!(model.hits() >= net.layers.len() as u64);
            }
        }
    }

    #[test]
    fn transformer_stack_cost_is_the_sum_of_its_layer_costs() {
        use bpvec_dnn::transformer_block;
        // SplitMix64 over stack shapes: for *any* transformer stack —
        // prefill or decode, any head geometry — the whole-network result
        // must equal the per-layer costs summed in layer order, through
        // both the direct engine and the memoized model.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let config = cfg();
        for round in 0..8 {
            let heads = 1usize << (next() % 4);
            let head_dim = 8 * (1 + next() as usize % 8);
            let hidden = heads * head_dim;
            let decode = round % 2 == 1;
            let kv_len = 1 + next() as usize % 256;
            let q_len = if decode { 1 } else { kv_len };
            let blocks = 1 + next() as usize % 3;
            let mut layers = Vec::new();
            for bi in 0..blocks {
                transformer_block(&mut layers, &format!("b{bi}"), hidden, heads, q_len, kv_len);
            }
            let net = Network {
                id: NetworkId::BertBase,
                policy: PrecisionPolicy::homogeneous8(),
                layers,
            };
            let b = config.batching.batch_for(net.id);
            let direct = simulate(&net, &config);
            let mut latency = 0.0f64;
            let mut energy = 0.0f64;
            for layer in &net.layers {
                let c = layer_cost(layer, &config.accel, &config.dram, b);
                latency += c.latency_s;
                energy += c.core_energy_j + c.dram_energy_j;
            }
            let shape = format!("{heads}h×{head_dim} q{q_len} kv{kv_len} ×{blocks}");
            assert_eq!(direct.latency_s, latency / b as f64, "{shape}");
            assert_eq!(direct.energy_j, energy / b as f64, "{shape}");
            let model = CostModel::new();
            assert_eq!(model.simulate(&net, &config), direct, "{shape}");
            assert_eq!(model.simulate(&net, &config), direct, "warm {shape}");
        }
    }

    #[test]
    fn repeated_shapes_share_entries_within_one_network() {
        let net = Network::build(NetworkId::ResNet50, BitwidthPolicy::Homogeneous8);
        let model = CostModel::new();
        let _ = model.simulate(&net, &cfg());
        // ResNet-50 repeats its bottleneck shapes heavily: far fewer
        // distinct entries than layers.
        assert!(
            model.entries() < net.layers.len(),
            "{} entries for {} layers",
            model.entries(),
            net.layers.len()
        );
        assert!(model.hits() > 0);
    }

    #[test]
    fn memory_name_is_not_part_of_the_key() {
        let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
        let model = CostModel::new();
        let a = SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4());
        let renamed = SimConfig::new(
            AcceleratorConfig::bpvec(),
            DramSpec::custom("DDR4-twin", 16.0, 15.0),
        );
        let ra = model.simulate(&net, &a);
        let before = model.entries();
        let rb = model.simulate(&net, &renamed);
        assert_eq!(model.entries(), before, "identical numbers share entries");
        assert_eq!(ra.latency_s, rb.latency_s);
    }

    #[test]
    fn different_platforms_and_batches_do_not_collide() {
        let net = Network::build(NetworkId::ResNet18, BitwidthPolicy::Heterogeneous);
        let model = CostModel::new();
        let bp = model.simulate(
            &net,
            &SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4()),
        );
        let tpu = model.simulate(
            &net,
            &SimConfig::new(AcceleratorConfig::tpu_like(), DramSpec::ddr4()),
        );
        assert_ne!(bp.latency_s, tpu.latency_s);
        assert_eq!(
            bp,
            simulate(
                &net,
                &SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4())
            )
        );
        assert_eq!(
            tpu,
            simulate(
                &net,
                &SimConfig::new(AcceleratorConfig::tpu_like(), DramSpec::ddr4())
            )
        );
    }
}
