//! # `bpvec-sim` — the BPVeC accelerator simulator and the `Scenario` evaluation API
//!
//! The paper's end-to-end evaluation (§IV, Figures 5–8) runs on a modified
//! version of the BitFusion simulation infrastructure: an analytical
//! performance/energy model of systolic accelerators driven by layer shapes,
//! with CACTI-modeled scratchpads and DDR4/HBM2 off-chip memories. This
//! crate re-implements that methodology and wraps it in a composable
//! evaluation API:
//!
//! * [`scenario`] — the unified evaluation API: the [`Evaluator`] trait
//!   (implemented here by [`AcceleratorConfig`] and in `bpvec-gpumodel` by
//!   its GPU model, so ASIC and GPU backends are interchangeable), the
//!   [`Scenario`] builder over platforms × workloads × memories, and the
//!   [`Report`] it yields (normalized comparisons, geomeans, CSV/JSON);
//! * [`workload`] — [`Workload`] (network + bitwidth policy +
//!   [`BatchRegime`]), the *what* of every evaluation;
//! * [`memory`] — off-chip memory specs (DDR4: 16 GB/s @ 15 pJ/bit;
//!   HBM2: 256 GB/s @ 1.2 pJ/bit) and the 112 KB on-chip scratchpad;
//! * [`accel`] — the three ASIC platforms of Table II under the same 250 mW
//!   core budget: TPU-like (512 conventional MACs), BitFusion (448 fusion
//!   units), BPVeC (1024 CVU lanes = 64 CVUs × L 16);
//! * [`tiling`] — a loop-tiling optimizer that picks, per layer, the tile
//!   shape minimizing DRAM traffic under the scratchpad capacity;
//! * [`engine`] — per-layer compute/memory time (double-buffered overlap),
//!   energy (core + DRAM), and network-level aggregation — the analytical
//!   model behind the accelerator backend;
//! * [`systolic`] — a bit-true, cycle-counted functional systolic array of
//!   CVUs used to validate the analytical model's arithmetic and cycle
//!   accounting against `bpvec-core` and `bpvec-dnn::reference`;
//! * [`executor`] — bit-true execution of whole (small) layer stacks on the
//!   systolic array: im2col convolutions, dense and recurrent layers with
//!   requantization, checked end-to-end against the reference pipeline;
//! * [`roofline`](mod@crate::roofline) — roofline analysis (arithmetic intensity vs ridge
//!   points), the two-number explanation of every Figure 5–8 result;
//! * [`experiments`] — Figures 5–8 as ~10-line scenario declarations, with
//!   the paper's reported series alongside for comparison.
//!
//! The `bpvec-serve` crate builds on this API from the other side: it
//! drives any [`Evaluator`] as the backend of a discrete-event
//! inference-serving simulation (arrival processes, dynamic batching over
//! [`BatchRegime`] batch costs, sharded clusters, tail-latency metrics).
//!
//! ## Declaring an experiment
//!
//! ```
//! use bpvec_sim::{AcceleratorConfig, DramSpec, Scenario, Workload};
//! use bpvec_dnn::BitwidthPolicy;
//!
//! let report = Scenario::new("hbm2 study")
//!     .platform(AcceleratorConfig::tpu_like())
//!     .platform(AcceleratorConfig::bpvec())
//!     .memory(DramSpec::ddr4())
//!     .memory(DramSpec::hbm2())
//!     .workloads(Workload::table1(BitwidthPolicy::Homogeneous8))
//!     .run();
//! // Figure 6's BPVeC series — and any other slice of the grid:
//! let fig6 = report.comparison("BPVeC", "HBM2");
//! assert!(fig6.geomean_speedup > 1.0);
//! println!("{}", report.to_csv());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod accel;
pub mod cost;
pub mod engine;
pub mod executor;
pub mod experiments;
pub mod memory;
pub mod roofline;
pub mod scenario;
pub mod systolic;
pub mod tiling;
pub mod workload;

pub use accel::{AcceleratorConfig, Design};
pub use cost::{layer_cost, CostModel, LayerCost};
pub use engine::{geomean, simulate, Boundedness, LayerResult, NetworkResult, SimConfig};
pub use executor::{ExecutionTrace, NetworkExecutor, WeightStore};
pub use memory::{DramSpec, ScratchpadSpec};
pub use roofline::{roofline, roofline_cached, RooflinePoint};
pub use scenario::{
    Cell, CellRef, Comparison, ComparisonRow, Evaluator, Labeled, Measurement, PlatformSpec,
    Report, Scenario, ScenarioError, ScenarioSpec, Series, SeriesEntry,
};
pub use workload::{BatchRegime, Workload};
