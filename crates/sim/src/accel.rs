//! The three evaluated ASIC platforms (paper Table II).
//!
//! All three share a 250 mW core power budget, 500 MHz clock, a 112 KB
//! scratchpad and a 2-D systolic organization; they differ in the compute
//! unit and hence in how many 8-bit-MAC-equivalents fit the budget:
//!
//! | design    | unit                      | MAC-equivalents |
//! |-----------|---------------------------|-----------------|
//! | TPU-like  | conventional 8-bit MAC    | 512             |
//! | BitFusion | scalar fusion unit (L=1)  | 448             |
//! | BPVeC     | CVU lane (64 CVUs × L=16) | 1024            |
//!
//! The counts are Table II's; they are cross-checked against the
//! `bpvec-hwmodel` per-unit power in this module's tests (the ~2.0× and
//! ~2.3× per-MAC power advantages are exactly what lets BPVeC pack 2×/2.28×
//! the units of the baselines).

use bpvec_core::BitWidth;
use bpvec_hwmodel::units::CvuGeometry;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::memory::ScratchpadSpec;

/// Which accelerator design a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// TPU-like systolic baseline with conventional 8-bit MACs.
    TpuLike,
    /// BitFusion: scalar spatial bit-level composability.
    BitFusion,
    /// BPVeC: bit-parallel vector composability (this paper).
    Bpvec,
}

impl Design {
    /// The design's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Design::TpuLike => "TPU-like",
            Design::BitFusion => "BitFusion",
            Design::Bpvec => "BPVeC",
        }
    }

    /// True if the design recomposes at bit granularity (gains throughput
    /// from reduced bitwidths).
    #[must_use]
    pub fn is_bit_composable(self) -> bool {
        !matches!(self, Design::TpuLike)
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete accelerator configuration (one column of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// The design style.
    pub design: Design,
    /// 8-bit-MAC-equivalent compute units.
    pub mac_units: u64,
    /// Core clock, MHz.
    pub freq_mhz: f64,
    /// Core (MAC-array) power budget, mW.
    pub core_power_mw: f64,
    /// Scratchpad + NoC power at 500 MHz (CACTI-P-style estimate), mW.
    pub sram_power_mw: f64,
    /// On-chip scratchpad.
    pub scratchpad: ScratchpadSpec,
}

impl AcceleratorConfig {
    /// Table II's TPU-like baseline: 512 conventional MACs.
    #[must_use]
    pub fn tpu_like() -> Self {
        AcceleratorConfig {
            design: Design::TpuLike,
            mac_units: 512,
            freq_mhz: 500.0,
            core_power_mw: 250.0,
            sram_power_mw: 300.0,
            scratchpad: ScratchpadSpec::paper_default(),
        }
    }

    /// Table II's BitFusion configuration: 448 fusion units.
    #[must_use]
    pub fn bitfusion() -> Self {
        AcceleratorConfig {
            design: Design::BitFusion,
            mac_units: 448,
            freq_mhz: 500.0,
            core_power_mw: 250.0,
            sram_power_mw: 300.0,
            scratchpad: ScratchpadSpec::paper_default(),
        }
    }

    /// Table II's BPVeC configuration: 1024 CVU lanes (64 CVUs, L = 16).
    #[must_use]
    pub fn bpvec() -> Self {
        AcceleratorConfig {
            design: Design::Bpvec,
            mac_units: 1024,
            freq_mhz: 500.0,
            core_power_mw: 250.0,
            sram_power_mw: 300.0,
            scratchpad: ScratchpadSpec::paper_default(),
        }
    }

    /// The CVU/fusion-unit geometry behind a bit-composable design.
    #[must_use]
    pub fn geometry(&self) -> Option<CvuGeometry> {
        match self.design {
            Design::TpuLike => None,
            Design::BitFusion => Some(CvuGeometry {
                slice_bits: 2,
                max_bits: 8,
                lanes: 1,
            }),
            Design::Bpvec => Some(CvuGeometry::paper_default()),
        }
    }

    /// Operand-level MACs completed per cycle at bitwidths `(bx, bw)`.
    ///
    /// The TPU-like design processes narrow operands at 8-bit rates; the
    /// bit-composable designs re-cluster and gain the composition's
    /// throughput multiplier.
    #[must_use]
    pub fn macs_per_cycle(&self, bx: BitWidth, bw: BitWidth) -> f64 {
        let base = self.mac_units as f64;
        match self.geometry() {
            None => base,
            Some(geom) => {
                base * bpvec_hwmodel::units::throughput_multiplier(&geom, bx.bits(), bw.bits())
            }
        }
    }

    /// Peak throughput at bitwidths `(bx, bw)`, in MACs per second.
    #[must_use]
    pub fn macs_per_second(&self, bx: BitWidth, bw: BitWidth) -> f64 {
        self.macs_per_cycle(bx, bw) * self.freq_mhz * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_hwmodel::units::{bitfusion_fusion_unit, conventional_mac, cvu_cost, CvuGeometry};
    use bpvec_hwmodel::TechnologyProfile;

    #[test]
    fn table2_unit_counts() {
        assert_eq!(AcceleratorConfig::tpu_like().mac_units, 512);
        assert_eq!(AcceleratorConfig::bitfusion().mac_units, 448);
        assert_eq!(AcceleratorConfig::bpvec().mac_units, 1024);
        for c in [
            AcceleratorConfig::tpu_like(),
            AcceleratorConfig::bitfusion(),
            AcceleratorConfig::bpvec(),
        ] {
            assert_eq!(c.freq_mhz, 500.0);
            assert_eq!(c.core_power_mw, 250.0);
            assert_eq!(c.scratchpad.capacity_bytes, 112 * 1024);
        }
    }

    #[test]
    fn unit_counts_are_consistent_with_the_cost_model() {
        // Table II packs units under one 250 mW budget, so the count ratios
        // must match the hwmodel's per-MAC power ratios (within ~20%).
        let t = TechnologyProfile::nm45();
        let conv = conventional_mac(&t).per_mac().total().power;
        let cvu = cvu_cost(&CvuGeometry::paper_default(), &t)
            .per_mac()
            .total()
            .power;
        let bf = bitfusion_fusion_unit(&t).per_mac().total().power;
        let model_bpvec_vs_tpu = conv / cvu; // how many more lanes fit
        let table_bpvec_vs_tpu = 1024.0 / 512.0;
        assert!(
            (model_bpvec_vs_tpu / table_bpvec_vs_tpu - 1.0).abs() < 0.25,
            "model {model_bpvec_vs_tpu:.2} vs table {table_bpvec_vs_tpu:.2}"
        );
        let model_bpvec_vs_bf = bf / cvu;
        let table_bpvec_vs_bf = 1024.0 / 448.0;
        assert!(
            (model_bpvec_vs_bf / table_bpvec_vs_bf - 1.0).abs() < 0.30,
            "model {model_bpvec_vs_bf:.2} vs table {table_bpvec_vs_bf:.2}"
        );
    }

    #[test]
    fn tpu_like_gains_nothing_from_narrow_operands() {
        let c = AcceleratorConfig::tpu_like();
        assert_eq!(c.macs_per_cycle(BitWidth::INT8, BitWidth::INT8), 512.0);
        assert_eq!(c.macs_per_cycle(BitWidth::INT4, BitWidth::INT4), 512.0);
        assert_eq!(c.macs_per_cycle(BitWidth::INT2, BitWidth::INT2), 512.0);
    }

    #[test]
    fn composable_designs_scale_with_bitwidth() {
        let bf = AcceleratorConfig::bitfusion();
        let bp = AcceleratorConfig::bpvec();
        assert_eq!(bf.macs_per_cycle(BitWidth::INT4, BitWidth::INT4), 1792.0);
        assert_eq!(bp.macs_per_cycle(BitWidth::INT4, BitWidth::INT4), 4096.0);
        assert_eq!(bp.macs_per_cycle(BitWidth::INT2, BitWidth::INT2), 16384.0);
        assert_eq!(bp.macs_per_cycle(BitWidth::INT8, BitWidth::INT2), 4096.0);
    }

    #[test]
    fn peak_throughput_at_500mhz() {
        let bp = AcceleratorConfig::bpvec();
        // 1024 lanes x 500 MHz = 512 GMAC/s at 8-bit.
        assert!((bp.macs_per_second(BitWidth::INT8, BitWidth::INT8) - 512e9).abs() < 1.0);
    }
}
