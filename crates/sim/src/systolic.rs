//! A bit-true, cycle-counted functional model of the BPVeC systolic array
//! (paper §III-C).
//!
//! The overall architecture is a 2-D array of CVUs: every CVU reads a vector
//! of weights from its private scratchpad, input vectors are shared across
//! the CVUs of a row, and scalar outputs aggregate down the columns into
//! 64-bit accumulators. This module executes that dataflow exactly, two
//! ways:
//!
//! * [`SystolicArray::gemm`] — the element-at-a-time validation path: every
//!   dot-product goes through [`bpvec_core::Cvu`], slicing scalars one by
//!   one. Exact, slow, kept as the ground truth the fast path is pinned to.
//! * [`SystolicArray::gemm_packed`] — the execution path: operands arrive
//!   pre-decomposed as [`PackedSliceMatrix`] bit planes (packed once per
//!   layer by the caller), and each output tile streams whole planes
//!   through the word-level popcount/SWAR kernels. Identical outputs,
//!   identical cycle accounting, orders of magnitude faster — fast enough
//!   to run full Table I networks bit-true.

use bpvec_core::{kernels, BitWidth, CoreError, Cvu, CvuConfig, PackedSliceMatrix, Signedness};
use bpvec_dnn::Tensor;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Rows of `A` per rayon macro-tile in the blocked packed GEMM driver —
/// the outermost (thread-level) tier of the tiling hierarchy. Big enough
/// that each task amortizes its stationary-operand panel extraction, small
/// enough that row-heavy GEMMs still fan out.
pub const MACRO_ROW_BLOCK: usize = 32;

/// The tiling geometry the blocked packed GEMM driver uses for one operand
/// pair — reported so execution traces can show how a layer was blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedTileGeometry {
    /// Rows of `A` per rayon macro-tile ([`MACRO_ROW_BLOCK`], clamped).
    pub row_block: usize,
    /// Macro-tiles the GEMM fans out over threads.
    pub macro_row_tiles: u64,
    /// Columns of `B` per L1-resident sub-plane panel.
    pub col_panel: usize,
    /// Panels each macro-tile streams through L1.
    pub col_panels: u64,
}

/// Computes the tiling geometry [`SystolicArray::gemm_packed`] will use for
/// `a · b` — the macro-row fan-out and the L1 column-panel split.
#[must_use]
pub fn packed_tile_geometry(a: &PackedSliceMatrix, b: &PackedSliceMatrix) -> PackedTileGeometry {
    let (m, n) = (a.num_vecs(), b.num_vecs());
    let row_block = MACRO_ROW_BLOCK.min(m.max(1));
    let bbits = b.n_slices() * b.slice_width().bits() as usize;
    let wpad = kernels::pad_words(a.words_per_vec());
    let col_panel = kernels::col_panel_len(bbits, wpad).min(n.max(1));
    PackedTileGeometry {
        row_block,
        macro_row_tiles: m.div_ceil(row_block) as u64,
        col_panel,
        col_panels: n.div_ceil(col_panel) as u64,
    }
}

/// Geometry of the systolic array: `rows × cols` CVUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// CVU rows (parallel output neurons / output channels).
    pub rows: usize,
    /// CVU columns (parallel positions sharing the same weights).
    pub cols: usize,
    /// Per-CVU geometry.
    pub cvu: CvuConfig,
}

impl ArrayConfig {
    /// An 8×8 array of paper-default CVUs — 64 CVUs × 16 lanes = 1024
    /// MAC-equivalents, the Table II BPVeC configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        ArrayConfig {
            rows: 8,
            cols: 8,
            cvu: CvuConfig::paper_default(),
        }
    }
}

/// Result of executing a GEMM on the systolic array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmRun {
    /// The output matrix `[m, n]`.
    pub output: Tensor,
    /// Cycles consumed, including pipeline fill/drain.
    pub cycles: u64,
    /// Operand-level MACs performed.
    pub macs: u64,
}

impl GemmRun {
    /// Sustained MACs per cycle over the run.
    #[must_use]
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles as f64
        }
    }
}

/// A systolic array of CVUs.
#[derive(Debug, Clone)]
pub struct SystolicArray {
    config: ArrayConfig,
    cvu: Cvu,
}

impl SystolicArray {
    /// Builds the array.
    #[must_use]
    pub fn new(config: ArrayConfig) -> Self {
        SystolicArray {
            cvu: Cvu::new(config.cvu),
            config,
        }
    }

    /// The array configuration.
    #[must_use]
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Executes `C[m,n] = A[m,k] · B[k,n]` bit-true on the array.
    ///
    /// Mapping (weight-stationary): rows of `A` (e.g. output channels'
    /// weight vectors) map to CVU rows, columns of `B` (e.g. output pixels)
    /// map to CVU columns; each CVU computes a full `k`-length dot-product
    /// in `ceil(k / (clusters·L))` beats. The array needs
    /// `ceil(m/rows) · ceil(n/cols)` tile passes, plus `rows + cols` fill
    /// and drain cycles per pass (systolic skew).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] when operands exceed the declared bitwidths
    /// or the composition cannot fit the CVU.
    pub fn gemm(
        &self,
        a: &Tensor,
        b: &Tensor,
        bits_a: BitWidth,
        bits_b: BitWidth,
        signedness: Signedness,
    ) -> Result<GemmRun, CoreError> {
        let (ash, bsh) = (a.shape(), b.shape());
        assert_eq!(ash.len(), 2, "A must be [m, k]");
        assert_eq!(bsh.len(), 2, "B must be [k, n]");
        assert_eq!(ash[1], bsh[0], "inner dimensions must agree");
        let (m, k, n) = (ash[0], ash[1], bsh[1]);
        let mut output = Tensor::zeros(&[m, n]);
        let mut cycles = 0u64;
        let mut macs = 0u64;
        let row_tiles = m.div_ceil(self.config.rows.max(1));
        let col_tiles = n.div_ceil(self.config.cols.max(1));

        for rt in 0..row_tiles {
            for ct in 0..col_tiles {
                let mut pass_beats = 0u64;
                for r in 0..self.config.rows {
                    let i = rt * self.config.rows + r;
                    if i >= m {
                        continue;
                    }
                    let a_row: Vec<i32> = (0..k).map(|p| a[&[i, p]]).collect();
                    for c in 0..self.config.cols {
                        let j = ct * self.config.cols + c;
                        if j >= n {
                            continue;
                        }
                        let b_col: Vec<i32> = (0..k).map(|p| b[&[p, j]]).collect();
                        let out = self
                            .cvu
                            .dot_product(&a_row, &b_col, bits_a, bits_b, signedness)?;
                        output[&[i, j]] =
                            i32::try_from(out.value).expect("quantized GEMM results fit i32");
                        pass_beats = pass_beats.max(out.cycles);
                        macs += k as u64;
                    }
                }
                // All CVUs of the pass run in lockstep: the pass takes the
                // longest dot-product plus the systolic fill/drain skew.
                cycles += pass_beats + (self.config.rows + self.config.cols) as u64;
            }
        }
        Ok(GemmRun {
            output,
            cycles,
            macs,
        })
    }

    /// Executes `C[m,n] = A[m,k] · B[k,n]` bit-true from packed bit planes.
    ///
    /// `a` holds the `m` rows of `A` (e.g. output channels' weight vectors)
    /// and `b` the `n` columns of `B` (e.g. im2col patches), both
    /// decomposed once by the caller — via
    /// [`PackedSliceMatrix::pack_rows`]/[`pack_from_fn`](PackedSliceMatrix::pack_from_fn)
    /// or `bpvec-dnn`'s `pack_gemm_rows`/`pack_gemm_cols` — and reused
    /// across every output tile here (and across calls: weights stay packed
    /// for a whole layer, recurrent layers for the whole sequence).
    ///
    /// The array mapping and cycle accounting are identical to
    /// [`SystolicArray::gemm`]: rows of `A` to CVU rows, columns of `B` to
    /// CVU columns, `ceil(k / (clusters·L))` beats per tile pass plus
    /// `rows + cols` systolic skew. The *compute* is driven by a
    /// multi-level blocked schedule, decoupled from the modeled array tile
    /// walk (the cycle model above is analytical, so the host-side schedule
    /// is free to chase cache locality):
    ///
    /// * **register tier** — the dispatched sub-plane kernel
    ///   ([`bpvec_core::kernels::active_tier`]: AVX-512 `vpopcntq`, AVX2
    ///   vpshufb-popcount, or scalar SWAR) streams packed words in
    ///   SIMD-width chunks, weights held in-register;
    /// * **L1 tier** — `B` is decomposed into one-bit sub-plane panels of
    ///   [`packed_tile_geometry`]`().col_panel` columns that stay L1-resident
    ///   while every row of the macro-tile streams against them
    ///   ([`PackedSliceMatrix::dot_block_into`]);
    /// * **thread tier** — row macro-tiles of [`MACRO_ROW_BLOCK`] rows fan
    ///   out rayon-parallel.
    ///
    /// Every output scalar is Equation 4 through the word-level slice
    /// kernels, bit-identical to the per-element path on every dispatch
    /// tier (pinned by tests).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] when the packed bitwidths cannot compose on
    /// this CVU geometry.
    ///
    /// # Panics
    ///
    /// Panics if the operands disagree in inner length, or were packed at a
    /// slice width other than this array's CVU slicing (operands must be
    /// packed for the hardware that consumes them).
    pub fn gemm_packed(
        &self,
        a: &PackedSliceMatrix,
        b: &PackedSliceMatrix,
    ) -> Result<GemmRun, CoreError> {
        assert_eq!(a.len(), b.len(), "inner dimensions must agree");
        assert_eq!(
            a.slice_width(),
            self.config.cvu.slice_width,
            "operands must be packed at the array's slice width"
        );
        assert_eq!(
            b.slice_width(),
            self.config.cvu.slice_width,
            "operands must be packed at the array's slice width"
        );
        let composition = self.cvu.compose(a.width(), b.width())?;
        let (m, k, n) = (a.num_vecs(), a.len(), b.num_vecs());
        // Spans stay unclamped so a degenerate 0-row/0-column geometry
        // behaves exactly like the per-element path (no CVUs, no work, only
        // skew); the clamp applies to the tile count alone, as in `gemm`.
        let (rows, cols) = (self.config.rows, self.config.cols);
        let row_tiles = m.div_ceil(rows.max(1));
        let col_tiles = n.div_ceil(cols.max(1));
        // All CVUs of a pass run in lockstep: ceil(k / (clusters·L)) beats,
        // plus fill/drain skew — exactly the per-element path's accounting
        // (a pass with no active CVUs, from empty operands or a degenerate
        // geometry, runs zero beats).
        let chunk_per_cycle = composition.clusters() * self.config.cvu.lanes;
        let beats = if k == 0 || rows == 0 || cols == 0 {
            0
        } else {
            k.div_ceil(chunk_per_cycle) as u64
        };
        let cycles = (row_tiles * col_tiles) as u64 * (beats + (rows + cols) as u64);

        let mut output = Tensor::zeros(&[m, n]);
        // A degenerate 0-row/0-column geometry computes nothing on either
        // path — all-zero output, zero MACs, skew-only cycles.
        if rows == 0 || cols == 0 || m == 0 || n == 0 {
            return Ok(GemmRun {
                output,
                cycles,
                macs: 0,
            });
        }
        // The blocked driver: macro-tiles of A rows fan out rayon-parallel,
        // each streaming B's L1-resident sub-plane panels through the
        // dispatched kernel (see the tiling tiers in the doc above).
        let tier = kernels::active_tier();
        let geo = packed_tile_geometry(a, b);
        let blocks: Vec<(usize, usize)> = (0..geo.macro_row_tiles as usize)
            .map(|t| (t * geo.row_block, ((t + 1) * geo.row_block).min(m)))
            .collect();
        let computed: Vec<Vec<i64>> = blocks
            .par_iter()
            .map(|&(lo, hi)| {
                let mut block = vec![0i64; (hi - lo) * n];
                a.dot_block_into(tier, lo..hi, b, &mut block);
                block
            })
            .collect();
        for ((lo, hi), block) in blocks.into_iter().zip(computed) {
            for (ri, i) in (lo..hi).enumerate() {
                for j in 0..n {
                    output[&[i, j]] =
                        i32::try_from(block[ri * n + j]).expect("quantized GEMM results fit i32");
                }
            }
        }
        // MACs are charged per *computed* output (matching `gemm`, which
        // only counts outputs a CVU actually produced).
        let macs = (m * n) as u64 * k as u64;
        Ok(GemmRun {
            output,
            cycles,
            macs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_dnn::reference;
    use rand::{Rng, SeedableRng};

    fn small_array() -> SystolicArray {
        SystolicArray::new(ArrayConfig {
            rows: 4,
            cols: 4,
            cvu: CvuConfig::paper_default(),
        })
    }

    fn random_matrix(rng: &mut impl Rng, m: usize, n: usize, lo: i32, hi: i32) -> Tensor {
        Tensor::from_fn(&[m, n], |_| rng.gen_range(lo..=hi))
    }

    #[test]
    fn gemm_matches_reference_8bit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = random_matrix(&mut rng, 9, 33, -128, 127);
        let b = random_matrix(&mut rng, 33, 10, -128, 127);
        let run = small_array()
            .gemm(&a, &b, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        assert_eq!(run.output, reference::gemm(&a, &b));
        assert_eq!(run.macs, 9 * 33 * 10);
    }

    #[test]
    fn gemm_matches_reference_mixed_bitwidths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let a = random_matrix(&mut rng, 5, 40, -128, 127);
        let b = random_matrix(&mut rng, 40, 6, -2, 1);
        let run = small_array()
            .gemm(&a, &b, BitWidth::INT8, BitWidth::INT2, Signedness::Signed)
            .unwrap();
        assert_eq!(run.output, reference::gemm(&a, &b));
    }

    #[test]
    fn narrow_bitwidths_cut_cycles() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a8 = random_matrix(&mut rng, 4, 256, -8, 7);
        let b8 = random_matrix(&mut rng, 256, 4, -8, 7);
        let arr = small_array();
        let run8 = arr
            .gemm(&a8, &b8, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        let run4 = arr
            .gemm(&a8, &b8, BitWidth::INT4, BitWidth::INT4, Signedness::Signed)
            .unwrap();
        assert_eq!(run4.output, run8.output);
        assert!(
            run4.cycles < run8.cycles,
            "4-bit {} !< 8-bit {}",
            run4.cycles,
            run8.cycles
        );
    }

    #[test]
    fn cycle_model_matches_analytical_formula() {
        // One full tile, k = 64, 8-bit: beats = ceil(64/16) = 4 per pass
        // plus rows+cols skew.
        let arr = small_array();
        let a = Tensor::zeros(&[4, 64]);
        let b = Tensor::zeros(&[64, 4]);
        let run = arr
            .gemm(&a, &b, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        assert_eq!(run.cycles, 4 + 8);
    }

    #[test]
    fn multiple_tiles_accumulate_cycles() {
        let arr = small_array();
        let a = Tensor::zeros(&[8, 16]);
        let b = Tensor::zeros(&[16, 8]);
        let run = arr
            .gemm(&a, &b, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        // 2x2 tile passes, each 1 beat + 8 skew.
        assert_eq!(run.cycles, 4 * 9);
    }

    #[test]
    fn paper_array_sustains_near_peak_on_large_gemm() {
        let arr = SystolicArray::new(ArrayConfig::paper_default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let a = random_matrix(&mut rng, 32, 512, -16, 15);
        let b = random_matrix(&mut rng, 512, 32, -16, 15);
        let run = arr
            .gemm(&a, &b, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        // Peak = 64 CVUs x 16 lanes = 1024 MACs/cycle; skew costs some.
        let sustained = run.macs_per_cycle();
        assert!(
            sustained > 0.6 * 1024.0,
            "sustained {sustained} too far from peak"
        );
        assert_eq!(run.output, reference::gemm(&a, &b));
    }

    #[test]
    fn packed_qkt_matches_dot_exact_for_every_width_and_signedness() {
        use bpvec_core::dotprod::dot_exact;
        // The attention score kernel QK^T, exhaustively: every operand
        // BitWidth (1..=8) × Signedness combination on both sides, each
        // output scalar checked against the exact dot product of the raw
        // operand vectors.
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let arr = small_array();
        let sw = arr.config().cvu.slice_width;
        let (q_len, head_dim, kv_len) = (5, 24, 6);
        for wq in 1..=8u32 {
            for wk in 1..=8u32 {
                for sq in [Signedness::Signed, Signedness::Unsigned] {
                    for sk in [Signedness::Signed, Signedness::Unsigned] {
                        let bq = BitWidth::new(wq).unwrap();
                        let bk = BitWidth::new(wk).unwrap();
                        let (qlo, qhi) = bq.range(sq);
                        let (klo, khi) = bk.range(sk);
                        let q = random_matrix(&mut rng, q_len, head_dim, qlo, qhi);
                        let kt = random_matrix(&mut rng, head_dim, kv_len, klo, khi);
                        let pq = q.pack_rows(bq, sw, sq).unwrap();
                        let pk = kt.pack_cols(bk, sw, sk).unwrap();
                        let run = arr.gemm_packed(&pq, &pk).unwrap();
                        for i in 0..q_len {
                            for j in 0..kv_len {
                                let qrow: Vec<i32> = (0..head_dim).map(|t| q[&[i, t]]).collect();
                                let kcol: Vec<i32> = (0..head_dim).map(|t| kt[&[t, j]]).collect();
                                let want = dot_exact(&qrow, &kcol).unwrap();
                                assert_eq!(
                                    i64::from(run.output[&[i, j]]),
                                    want,
                                    "Q {wq}b {sq:?} × K {wk}b {sk:?} at ({i},{j})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Packs `a`'s rows and `b`'s columns at the array's slicing.
    fn pack_operands(
        arr: &SystolicArray,
        a: &Tensor,
        b: &Tensor,
        bits_a: BitWidth,
        bits_b: BitWidth,
    ) -> (PackedSliceMatrix, PackedSliceMatrix) {
        let sw = arr.config().cvu.slice_width;
        let pa = a.pack_rows(bits_a, sw, Signedness::Signed).unwrap();
        let pb = b.pack_cols(bits_b, sw, Signedness::Signed).unwrap();
        (pa, pb)
    }

    #[test]
    fn packed_gemm_is_bit_and_cycle_identical_to_per_element_path() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let arr = small_array();
        // Shapes straddling tile boundaries, mixed operand widths.
        for (m, k, n, ba, bb) in [
            (9, 33, 10, BitWidth::INT8, BitWidth::INT8),
            (5, 40, 6, BitWidth::INT8, BitWidth::INT2),
            (4, 64, 4, BitWidth::INT4, BitWidth::INT4),
            (1, 7, 13, BitWidth::INT2, BitWidth::INT8),
            (
                8,
                16,
                8,
                BitWidth::new(3).unwrap(),
                BitWidth::new(5).unwrap(),
            ),
        ] {
            let (alo, ahi) = ba.range(Signedness::Signed);
            let (blo, bhi) = bb.range(Signedness::Signed);
            let a = random_matrix(&mut rng, m, k, alo, ahi);
            let b = random_matrix(&mut rng, k, n, blo, bhi);
            let slow = arr.gemm(&a, &b, ba, bb, Signedness::Signed).unwrap();
            let (pa, pb) = pack_operands(&arr, &a, &b, ba, bb);
            let fast = arr.gemm_packed(&pa, &pb).unwrap();
            assert_eq!(fast.output, slow.output, "[{m},{k}]x[{k},{n}] {ba}x{bb}");
            assert_eq!(fast.cycles, slow.cycles, "[{m},{k}]x[{k},{n}] {ba}x{bb}");
            assert_eq!(fast.macs, slow.macs, "[{m},{k}]x[{k},{n}] {ba}x{bb}");
        }
    }

    #[test]
    fn packed_gemm_degenerate_shapes_match() {
        let arr = small_array();
        for (m, k, n) in [(3, 0, 2), (1, 1, 1)] {
            let a = Tensor::zeros(&[m, k]);
            let b = Tensor::zeros(&[k, n]);
            let slow = arr
                .gemm(&a, &b, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
                .unwrap();
            let (pa, pb) = pack_operands(&arr, &a, &b, BitWidth::INT8, BitWidth::INT8);
            let fast = arr.gemm_packed(&pa, &pb).unwrap();
            assert_eq!(fast, slow, "[{m},{k}]x[{k},{n}]");
        }
    }

    #[test]
    fn packed_gemm_degenerate_geometry_matches() {
        // A 0-row (or 0-column) array computes nothing on either path —
        // same all-zero output, same skew-only cycles, same zero MACs.
        for (rows, cols) in [(0usize, 4usize), (4, 0)] {
            let arr = SystolicArray::new(ArrayConfig {
                rows,
                cols,
                cvu: CvuConfig::paper_default(),
            });
            let a = Tensor::from_fn(&[3, 8], |i| (i[0] + i[1]) as i32);
            let b = Tensor::from_fn(&[8, 2], |i| (i[0] * 2 + i[1]) as i32);
            let slow = arr
                .gemm(&a, &b, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
                .unwrap();
            let (pa, pb) = pack_operands(&arr, &a, &b, BitWidth::INT8, BitWidth::INT8);
            let fast = arr.gemm_packed(&pa, &pb).unwrap();
            assert_eq!(fast, slow, "{rows}x{cols} array");
        }
    }

    #[test]
    #[should_panic(expected = "packed at the array's slice width")]
    fn packed_gemm_rejects_foreign_slicing() {
        let arr = small_array(); // 2-bit slicing
        let a = Tensor::zeros(&[2, 8]);
        let pa = a
            .pack_rows(
                BitWidth::INT8,
                bpvec_core::SliceWidth::BIT4,
                Signedness::Signed,
            )
            .unwrap();
        let _ = arr.gemm_packed(&pa, &pa);
    }

    #[test]
    fn conv_as_gemm_matches_reference_conv() {
        // im2col lowering: conv output == GEMM of [oc, ic*k*k] x [ic*k*k, oh*ow].
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (ic, oc, k, h) = (3usize, 4usize, 3usize, 6usize);
        let input = Tensor::from_fn(&[ic, h, h], |_| rng.gen_range(-8..=7));
        let weights = Tensor::from_fn(&[oc, ic, k, k], |_| rng.gen_range(-8..=7));
        let conv_out = reference::conv2d(&input, &weights, (1, 1), (0, 0));
        let oh = h - k + 1;
        // Build the im2col matrix.
        let cols = Tensor::from_fn(&[ic * k * k, oh * oh], |idx| {
            let (row, col) = (idx[0], idx[1]);
            let c = row / (k * k);
            let ky = (row / k) % k;
            let kx = row % k;
            let oy = col / oh;
            let ox = col % oh;
            input[&[c, oy + ky, ox + kx]]
        });
        let mut wmat = weights.clone();
        wmat.reshape(&[oc, ic * k * k]);
        let run = small_array()
            .gemm(
                &wmat,
                &cols,
                BitWidth::INT4,
                BitWidth::INT4,
                Signedness::Signed,
            )
            .unwrap();
        let mut expect = conv_out;
        expect.reshape(&[oc, oh * oh]);
        assert_eq!(run.output, expect);
    }
}
