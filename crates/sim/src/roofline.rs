//! Roofline analysis of the evaluated platforms and workloads.
//!
//! The classic roofline model explains every performance result in
//! Figures 5–8 in two numbers per (workload, platform, memory) triple:
//!
//! * **arithmetic intensity** — MACs per DRAM byte, fixed by the layer
//!   shapes, the tiling, and the bitwidths;
//! * **ridge point** — the intensity where a platform's peak compute equals
//!   its memory bandwidth; workloads left of the ridge are memory-bound.
//!
//! BPVeC's 2× unit count moves its ridge point right, which is exactly why
//! it needs HBM2 (Fig. 6) or quantization-reduced traffic (Fig. 7) to
//! convert its compute into speedup.

use bpvec_core::BitWidth;
use bpvec_dnn::{Layer, Network};
use serde::Serialize;

use crate::accel::AcceleratorConfig;
use crate::cost::CostModel;
use crate::memory::DramSpec;
use crate::tiling;

/// Roofline coordinates for one workload on one platform/memory pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RooflinePoint {
    /// MACs per DRAM byte over the whole network (tiled traffic).
    pub intensity_macs_per_byte: f64,
    /// The platform's ridge point at the workload's dominant bitwidths,
    /// MACs per byte.
    pub ridge_macs_per_byte: f64,
    /// Attainable throughput under the roofline, GMAC/s.
    pub attainable_gmacs: f64,
    /// Peak compute throughput, GMAC/s.
    pub peak_gmacs: f64,
}

impl RooflinePoint {
    /// True when the workload sits left of the ridge (memory-bound).
    #[must_use]
    pub fn memory_bound(&self) -> bool {
        self.intensity_macs_per_byte < self.ridge_macs_per_byte
    }

    /// Fraction of peak the roofline permits, `0.0..=1.0`.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        self.attainable_gmacs / self.peak_gmacs
    }
}

/// Computes the roofline position of `network` on a platform/memory pair at
/// batch `b`.
///
/// The network's MAC-weighted dominant bitwidths select the compute roof
/// (bit-composable designs raise their peak on quantized layers).
#[must_use]
pub fn roofline(
    network: &Network,
    accel: &AcceleratorConfig,
    dram: &DramSpec,
    b: u64,
) -> RooflinePoint {
    let working = accel.scratchpad.working_bytes();
    roofline_from_traffic(network, accel, dram, b, |layer| {
        tiling::layer_traffic(layer, working, b)
    })
}

/// [`roofline`] with the per-layer traffic served from a shared, memoized
/// [`CostModel`] — identical coordinates, no repeated tiling searches when
/// many roofline points are plotted over one grid.
#[must_use]
pub fn roofline_cached(
    network: &Network,
    accel: &AcceleratorConfig,
    dram: &DramSpec,
    b: u64,
    cost: &CostModel,
) -> RooflinePoint {
    roofline_from_traffic(network, accel, dram, b, |layer| {
        cost.layer_cost(layer, accel, dram, b).traffic_bytes
    })
}

fn roofline_from_traffic(
    network: &Network,
    accel: &AcceleratorConfig,
    dram: &DramSpec,
    b: u64,
    mut layer_traffic: impl FnMut(&Layer) -> u64,
) -> RooflinePoint {
    let mut macs = 0u64;
    let mut traffic = 0u64;
    let mut peak_weighted = 0.0f64;
    for layer in &network.layers {
        let layer_macs = layer.macs() * b;
        macs += layer_macs;
        traffic += layer_traffic(layer);
        peak_weighted +=
            layer_macs as f64 * accel.macs_per_second(layer.act_bits, layer.weight_bits);
    }
    // MAC-weighted harmonic peak would be exact; the weighted arithmetic
    // mean is within a few percent for two-level bitwidth mixes and keeps
    // the roof interpretable.
    let peak = if macs == 0 {
        accel.macs_per_second(BitWidth::INT8, BitWidth::INT8)
    } else {
        peak_weighted / macs as f64
    };
    let bw_bytes = dram.bandwidth_gb_s * 1e9;
    let intensity = macs as f64 / traffic as f64;
    let ridge = peak / bw_bytes;
    let attainable = peak.min(intensity * bw_bytes);
    RooflinePoint {
        intensity_macs_per_byte: intensity,
        ridge_macs_per_byte: ridge,
        attainable_gmacs: attainable / 1e9,
        peak_gmacs: peak / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_dnn::{BitwidthPolicy, NetworkId};

    fn net(id: NetworkId) -> Network {
        Network::build(id, BitwidthPolicy::Homogeneous8)
    }

    #[test]
    fn ridge_points_match_the_table2_platforms() {
        // TPU-like on DDR4: 256 GMAC/s over 16 GB/s = 16 MACs/byte.
        let r = roofline(
            &net(NetworkId::ResNet50),
            &AcceleratorConfig::tpu_like(),
            &DramSpec::ddr4(),
            16,
        );
        assert!((r.ridge_macs_per_byte - 16.0).abs() < 1e-9);
        // BPVeC doubles compute: ridge at 32 MACs/byte.
        let r = roofline(
            &net(NetworkId::ResNet50),
            &AcceleratorConfig::bpvec(),
            &DramSpec::ddr4(),
            16,
        );
        assert!((r.ridge_macs_per_byte - 32.0).abs() < 1e-9);
    }

    #[test]
    fn recurrent_models_sit_far_left_of_every_ridge() {
        for id in [NetworkId::Rnn, NetworkId::Lstm] {
            let r = roofline(&net(id), &AcceleratorConfig::bpvec(), &DramSpec::ddr4(), 12);
            assert!(r.memory_bound(), "{id}");
            assert!(
                r.intensity_macs_per_byte < r.ridge_macs_per_byte / 2.0,
                "{id}: intensity {} vs ridge {}",
                r.intensity_macs_per_byte,
                r.ridge_macs_per_byte
            );
        }
    }

    #[test]
    fn cnns_clear_the_baseline_ridge_on_ddr4() {
        for id in [NetworkId::ResNet18, NetworkId::ResNet50] {
            let r = roofline(
                &net(id),
                &AcceleratorConfig::tpu_like(),
                &DramSpec::ddr4(),
                16,
            );
            assert!(!r.memory_bound(), "{id} should be compute-bound");
        }
    }

    #[test]
    fn hbm2_moves_everything_right_of_the_ridge() {
        for id in NetworkId::ALL {
            let r = roofline(&net(id), &AcceleratorConfig::bpvec(), &DramSpec::hbm2(), 16);
            assert!(
                !r.memory_bound() || r.efficiency() > 0.5,
                "{id}: efficiency {}",
                r.efficiency()
            );
        }
    }

    #[test]
    fn quantization_raises_the_composable_roof_only() {
        let het = Network::build(NetworkId::ResNet50, BitwidthPolicy::Heterogeneous);
        let bp = roofline(&het, &AcceleratorConfig::bpvec(), &DramSpec::ddr4(), 16);
        let tpu = roofline(&het, &AcceleratorConfig::tpu_like(), &DramSpec::ddr4(), 16);
        // BPVeC's 4-bit peak is ~4x its 8-bit peak; the TPU-like roof is flat.
        assert!(bp.peak_gmacs > 3.5 * 512.0);
        assert!((tpu.peak_gmacs - 256.0).abs() < 1.0);
    }

    #[test]
    fn attainable_never_exceeds_either_roof() {
        for id in NetworkId::ALL {
            for accel in [AcceleratorConfig::tpu_like(), AcceleratorConfig::bpvec()] {
                for dram in [DramSpec::ddr4(), DramSpec::hbm2()] {
                    let r = roofline(&net(id), &accel, &dram, 8);
                    assert!(r.attainable_gmacs <= r.peak_gmacs * 1.0000001);
                    let bw_roof = r.intensity_macs_per_byte * dram.bandwidth_gb_s;
                    assert!(r.attainable_gmacs <= bw_roof * 1.0000001);
                }
            }
        }
    }
}
