//! Loop-tiling and DRAM-traffic model.
//!
//! For every layer the simulator needs the number of bytes that must cross
//! the off-chip interface given the 112 KB scratchpad. This module searches
//! tile shapes per layer — output channels × input channels × output rows —
//! under a weight-stationary schedule with double buffering, and returns the
//! minimum-traffic choice:
//!
//! * weights are fetched once per (oc, ic) tile pass — `W` total;
//! * inputs are re-fetched once per output-channel tile — `In × ⌈oc/oc_t⌉`;
//! * partial sums spill when input channels are tiled —
//!   `Out × (2·⌈ic/ic_t⌉ − 1)`.
//!
//! Recurrent layers follow the streaming pattern of GEMV inference: the
//! weight matrix crosses the interface once per timestep, amortized over the
//! batch (the whole matrix never fits the 112 KB scratchpad for the
//! evaluated models).

use bpvec_dnn::{Layer, LayerKind};
use serde::{Deserialize, Serialize};

/// The chosen tiling for a layer and its resulting traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingChoice {
    /// Output-channel tile.
    pub oc_tile: usize,
    /// Input-channel tile.
    pub ic_tile: usize,
    /// Output-row tile.
    pub oh_tile: usize,
    /// Total DRAM traffic in bytes (for the whole batch).
    pub traffic_bytes: u64,
}

fn candidates(n: usize) -> Vec<usize> {
    // Descending, so ties in the traffic objective resolve to the largest
    // tile (less halo re-read and fewer loop iterations in the lowered
    // instruction stream).
    let mut c = vec![n];
    c.extend(
        [512usize, 256, 128, 64, 32, 16, 8, 4, 2, 1]
            .iter()
            .copied()
            .filter(|&v| v < n),
    );
    c
}

/// Bytes for `elems` elements at `bits` per element, rounded up.
fn bytes(elems: u64, bits: u32) -> u64 {
    (elems * u64::from(bits)).div_ceil(8)
}

/// Minimum-traffic tiling for a convolution (or 1×1-kernel dense layer
/// expressed as a conv) under `working_bytes` of scratchpad, batch `b`.
#[allow(clippy::too_many_arguments)]
fn conv_tiling(
    in_c: usize,
    out_c: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    input_hw: (usize, usize),
    output_hw: (usize, usize),
    act_bits: u32,
    weight_bits: u32,
    working_bytes: u64,
    b: u64,
) -> TilingChoice {
    let (kh, kw) = kernel;
    let (oh, ow) = output_hw;
    let in_w = input_hw.1;
    let w_total = bytes((out_c * in_c * kh * kw) as u64, weight_bits);
    let in_total = bytes(b * (in_c * input_hw.0 * input_hw.1) as u64, act_bits);
    let out_total = bytes(b * (out_c * oh * ow) as u64, act_bits);

    let mut best: Option<TilingChoice> = None;
    for &oc_t in &candidates(out_c) {
        for &ic_t in &candidates(in_c) {
            for &oh_t in &candidates(oh) {
                let w_tile = bytes((oc_t * ic_t * kh * kw) as u64, weight_bits);
                let in_rows = (oh_t - 1) * stride.0 + kh;
                let in_tile = bytes(b * (ic_t * in_rows * in_w) as u64, act_bits);
                let out_tile = bytes(b * (oc_t * oh_t * ow) as u64, act_bits);
                if w_tile + in_tile + out_tile > working_bytes {
                    continue;
                }
                let n_oc = out_c.div_ceil(oc_t) as u64;
                let n_ic = in_c.div_ceil(ic_t) as u64;
                let traffic = w_total + in_total * n_oc + out_total * (2 * n_ic - 1);
                let choice = TilingChoice {
                    oc_tile: oc_t,
                    ic_tile: ic_t,
                    oh_tile: oh_t,
                    traffic_bytes: traffic,
                };
                if best.is_none_or(|b| traffic < b.traffic_bytes) {
                    best = Some(choice);
                }
            }
        }
    }
    best.unwrap_or(TilingChoice {
        // Degenerate fallback: stream everything per output element (never
        // hit for realistic layers/scratchpads, but keeps the model total).
        oc_tile: 1,
        ic_tile: 1,
        oh_tile: 1,
        traffic_bytes: w_total * oh as u64 + in_total * out_c as u64 + out_total,
    })
}

/// Traffic for an attention GEMM (`QK^T` or `P·V`): per head, a streaming
/// operand `[q_rows × red]` at `act_bits` meets a stationary operand
/// `[kv_rows × kv_cols]` at `weight_bits`, producing `[q_rows × out_cols]`
/// at `act_bits`. Unlike conv weights, the stationary operand is *per
/// request* (each batch item has its own K/V), so batch never amortizes it.
#[allow(clippy::too_many_arguments)]
fn attention_gemm_tiling(
    heads: usize,
    q_rows: usize,
    red: usize,
    kv_rows: usize,
    kv_cols: usize,
    out_cols: usize,
    act_bits: u32,
    weight_bits: u32,
    working_bytes: u64,
    b: u64,
) -> TilingChoice {
    let stationary_total = bytes(b * (heads * kv_rows * kv_cols) as u64, weight_bits);
    let stream_total = bytes(b * (heads * q_rows * red) as u64, act_bits);
    let out_total = bytes(b * (heads * q_rows * out_cols) as u64, act_bits);
    let stationary_head = bytes((kv_rows * kv_cols) as u64, weight_bits);
    let half = (working_bytes / 2).max(1);
    let (row_tile, passes) = if stationary_head <= half {
        (q_rows, 1)
    } else {
        // K/V for one head exceeds its scratchpad half: stream it once per
        // tile of query rows, sized so a row tile plus its output fits.
        let row_bytes = bytes((red + out_cols) as u64, act_bits).max(1);
        let rows = usize::try_from((half / row_bytes).max(1)).unwrap_or(1);
        (rows.min(q_rows), q_rows.div_ceil(rows) as u64)
    };
    TilingChoice {
        oc_tile: heads,
        ic_tile: red,
        oh_tile: row_tile,
        traffic_bytes: stationary_total * passes + stream_total + out_total,
    }
}

/// DRAM traffic (bytes) for one layer processed at batch `b`.
///
/// Pooling layers move their activations through the core once.
#[must_use]
pub fn layer_traffic(layer: &Layer, working_bytes: u64, b: u64) -> u64 {
    layer_tiling(layer, working_bytes, b).traffic_bytes
}

/// The tiling decision behind [`layer_traffic`], exposed for inspection
/// (C-INTERMEDIATE).
#[must_use]
pub fn layer_tiling(layer: &Layer, working_bytes: u64, b: u64) -> TilingChoice {
    let ab = layer.act_bits.bits();
    let wb = layer.weight_bits.bits();
    match layer.kind {
        LayerKind::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            input_hw,
            ..
        } => conv_tiling(
            in_channels,
            out_channels,
            kernel,
            stride,
            input_hw,
            layer.output_hw().expect("conv output"),
            ab,
            wb,
            working_bytes,
            b,
        ),
        LayerKind::FullyConnected {
            in_features,
            out_features,
        } => conv_tiling(
            in_features,
            out_features,
            (1, 1),
            (1, 1),
            (1, 1),
            (1, 1),
            ab,
            wb,
            working_bytes,
            b,
        ),
        LayerKind::Pool {
            channels, input_hw, ..
        } => {
            let (oh, ow) = layer.output_hw().expect("pool output");
            let moved = bytes(
                b * (channels * (input_hw.0 * input_hw.1 + oh * ow)) as u64,
                ab,
            );
            TilingChoice {
                oc_tile: channels,
                ic_tile: channels,
                oh_tile: oh,
                traffic_bytes: moved,
            }
        }
        LayerKind::MatMulQK {
            heads,
            q_len,
            kv_len,
            head_dim,
        } => attention_gemm_tiling(
            heads,
            q_len,
            head_dim,
            kv_len,
            head_dim,
            kv_len,
            ab,
            wb,
            working_bytes,
            b,
        ),
        LayerKind::AttentionV {
            heads,
            q_len,
            kv_len,
            head_dim,
        } => attention_gemm_tiling(
            heads,
            q_len,
            kv_len,
            kv_len,
            head_dim,
            head_dim,
            ab,
            wb,
            working_bytes,
            b,
        ),
        LayerKind::Softmax { .. } | LayerKind::LayerNorm { .. } | LayerKind::Gelu { .. } => {
            // Memory-bound normalization/activation ops: like `Pool`, the
            // activations stream through the core exactly once, in and out.
            let moved = bytes(b * (layer.input_elems() + layer.output_elems()), ab);
            TilingChoice {
                oc_tile: 1,
                ic_tile: 1,
                oh_tile: 1,
                traffic_bytes: moved,
            }
        }
        LayerKind::Recurrent {
            input_size,
            hidden_size,
            gates,
            seq_len,
        } => {
            let w_total = bytes(
                (gates * hidden_size * (input_size + hidden_size)) as u64,
                wb,
            );
            let acts_per_step = bytes(b * (input_size + 2 * hidden_size) as u64, ab);
            let seq = seq_len as u64;
            // Weights stream once per timestep (shared across the batch)
            // unless the whole matrix fits on chip.
            let weight_traffic = if w_total <= working_bytes {
                w_total
            } else {
                w_total * seq
            };
            TilingChoice {
                oc_tile: hidden_size,
                ic_tile: input_size + hidden_size,
                oh_tile: 1,
                traffic_bytes: weight_traffic + acts_per_step * seq,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpvec_core::BitWidth;
    use bpvec_dnn::layer::{Layer, LayerKind};

    const WORKING: u64 = 57_344; // 112 KB / 2

    fn conv_layer(in_c: usize, out_c: usize, k: usize, hw: usize) -> Layer {
        Layer::new(
            "conv",
            LayerKind::Conv2d {
                in_channels: in_c,
                out_channels: out_c,
                kernel: (k, k),
                stride: (1, 1),
                padding: (k / 2, k / 2),
                input_hw: (hw, hw),
            },
        )
    }

    #[test]
    fn small_layer_is_fetched_exactly_once() {
        // Everything fits: traffic = W + In + Out.
        let l = conv_layer(8, 8, 3, 8);
        let t = layer_tiling(&l, WORKING, 1);
        let expect = 8 * 8 * 9 + 8 * 8 * 8 + 8 * 8 * 8;
        assert_eq!(t.traffic_bytes, expect as u64);
        assert_eq!(t.oc_tile, 8);
        assert_eq!(t.ic_tile, 8);
    }

    #[test]
    fn large_layer_pays_refetch_overhead() {
        // ResNet stage-1 sized layer: activations exceed the scratchpad, so
        // traffic must exceed the compulsory minimum.
        let l = conv_layer(64, 64, 3, 56);
        let t = layer_tiling(&l, WORKING, 1);
        let compulsory = (64 * 64 * 9 + 2 * 64 * 56 * 56) as u64;
        assert!(t.traffic_bytes >= compulsory);
        // ...but the optimizer keeps it within a small factor.
        assert!(
            t.traffic_bytes < 4 * compulsory,
            "traffic {} vs compulsory {}",
            t.traffic_bytes,
            compulsory
        );
    }

    #[test]
    fn tiles_respect_the_scratchpad() {
        let l = conv_layer(256, 512, 3, 28);
        let t = layer_tiling(&l, WORKING, 1);
        let w_tile = (t.oc_tile * t.ic_tile * 9) as u64;
        assert!(w_tile <= WORKING);
    }

    #[test]
    fn quantization_shrinks_traffic() {
        let l8 = conv_layer(128, 128, 3, 28);
        let l4 = l8.clone().with_bits(BitWidth::INT4, BitWidth::INT4);
        let t8 = layer_traffic(&l8, WORKING, 1);
        let t4 = layer_traffic(&l4, WORKING, 1);
        assert!(
            t4 * 10 <= t8 * 7,
            "4-bit traffic {t4} should be well below 8-bit {t8}"
        );
    }

    #[test]
    fn fc_traffic_is_weight_dominated() {
        let l = Layer::new(
            "fc6",
            LayerKind::FullyConnected {
                in_features: 9216,
                out_features: 4096,
            },
        );
        let t = layer_traffic(&l, WORKING, 1);
        let w = 9216u64 * 4096;
        assert!(t >= w && t < w + w / 4, "traffic {t} vs weights {w}");
    }

    #[test]
    fn batch_amortizes_fc_weights() {
        let l = Layer::new(
            "fc",
            LayerKind::FullyConnected {
                in_features: 4096,
                out_features: 4096,
            },
        );
        let t1 = layer_traffic(&l, WORKING, 1);
        let t8 = layer_traffic(&l, WORKING, 8);
        // Batch 8 must cost far less than 8x the batch-1 traffic.
        assert!(t8 < 2 * t1, "t8 {t8} vs t1 {t1}");
    }

    #[test]
    fn recurrent_weights_stream_per_timestep() {
        let l = Layer::new(
            "rnn",
            LayerKind::Recurrent {
                input_size: 2048,
                hidden_size: 2048,
                gates: 1,
                seq_len: 512,
            },
        );
        let t = layer_traffic(&l, WORKING, 1);
        let w = 2u64 * 2048 * 2048;
        assert!(t >= 512 * w, "weights must stream every step: {t}");
    }

    #[test]
    fn tiny_recurrent_layer_keeps_weights_on_chip() {
        let l = Layer::new(
            "rnn-small",
            LayerKind::Recurrent {
                input_size: 64,
                hidden_size: 64,
                gates: 1,
                seq_len: 100,
            },
        );
        let t = layer_traffic(&l, WORKING, 1);
        let w = (2 * 64 * 64) as u64;
        assert!(t < w + 100 * 3 * 64 + 1, "on-chip weights: {t}");
    }

    #[test]
    fn attention_kv_never_amortizes_over_batch() {
        // Each request carries its own K, so batch-8 traffic is ~8x batch-1
        // (unlike FC weights, which are shared).
        let l = Layer::new(
            "qk",
            LayerKind::MatMulQK {
                heads: 12,
                q_len: 128,
                kv_len: 128,
                head_dim: 64,
            },
        );
        let t1 = layer_traffic(&l, WORKING, 1);
        let t8 = layer_traffic(&l, WORKING, 8);
        assert_eq!(t8, 8 * t1);
    }

    #[test]
    fn long_context_attention_streams_kv_per_row_tile() {
        let short = Layer::new(
            "qk",
            LayerKind::MatMulQK {
                heads: 1,
                q_len: 64,
                kv_len: 64,
                head_dim: 64,
            },
        );
        let t = layer_tiling(&short, WORKING, 1);
        // Everything fits: each operand moves exactly once.
        assert_eq!(t.traffic_bytes, (64 * 64 + 64 * 64 + 64 * 64) as u64);
        let long = Layer::new(
            "qk-long",
            LayerKind::MatMulQK {
                heads: 1,
                q_len: 4096,
                kv_len: 4096,
                head_dim: 64,
            },
        );
        let tl = layer_tiling(&long, WORKING, 1);
        // K (4096x64 bytes) exceeds half the scratchpad, so it streams more
        // than once and traffic exceeds the move-once minimum.
        let minimum = (4096 * 64 + 4096 * 64 + 4096 * 4096) as u64;
        assert!(tl.traffic_bytes > minimum, "{}", tl.traffic_bytes);
        assert!(tl.oh_tile < 4096);
    }

    #[test]
    fn quantizing_kv_halves_the_stationary_traffic() {
        let qk8 = Layer::new(
            "qk",
            LayerKind::AttentionV {
                heads: 12,
                q_len: 1,
                kv_len: 2048,
                head_dim: 64,
            },
        );
        let qk4 = qk8.clone().with_bits(BitWidth::INT8, BitWidth::INT4);
        let t8 = layer_traffic(&qk8, WORKING, 1);
        let t4 = layer_traffic(&qk4, WORKING, 1);
        // Decode is KV-dominated, so 4-bit V cuts traffic close to half.
        assert!(t4 * 3 < t8 * 2, "t4 {t4} vs t8 {t8}");
    }

    #[test]
    fn normalization_ops_move_bytes_once() {
        for kind in [
            LayerKind::Softmax {
                rows: 128,
                cols: 128,
            },
            LayerKind::LayerNorm {
                features: 768,
                tokens: 128,
            },
            LayerKind::Gelu { elems: 768 * 128 },
        ] {
            let l = Layer::new("norm", kind);
            let t = layer_traffic(&l, WORKING, 1);
            assert_eq!(t, l.input_elems() + l.output_elems());
            assert_eq!(layer_traffic(&l, WORKING, 4), 4 * t);
        }
    }

    #[test]
    fn pooling_moves_activations_once() {
        let l = Layer::new(
            "pool",
            LayerKind::Pool {
                channels: 64,
                kernel: (2, 2),
                stride: (2, 2),
                input_hw: (8, 8),
            },
        );
        let t = layer_traffic(&l, WORKING, 1);
        assert_eq!(t, (64 * (64 + 16)) as u64);
    }
}
