//! Bit-true execution of full transformer blocks — the attention-era
//! counterpart to `bit_true_table1`.
//!
//! The executor-module unit tests cover toy-sized blocks; this integration
//! test runs a two-block stack at real head dimensions (head_dim 64, the
//! ViT/BERT choice) under the KV-quantized serving recipe (8-bit
//! activations, 4-bit K/V and weights on every GEMM-shaped layer), packed
//! path vs the reference integer pipeline, exact equality. Nightly CI runs
//! it in release alongside the Table I suite; it is sized to stay well
//! inside a debug-mode `cargo test` budget too.

use std::time::Instant;

use bpvec_core::{BitWidth, Signedness};
use bpvec_dnn::layer::LayerKind;
use bpvec_dnn::{transformer_block, Tensor};
use bpvec_sim::systolic::{ArrayConfig, SystolicArray};
use bpvec_sim::{NetworkExecutor, WeightStore};

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Two stacked transformer blocks at head_dim 64 (hidden 192, 3 heads,
/// 32 tokens), mixed 8-bit-activation × 4-bit-weight/KV precision, executed
/// bit-true on the packed systolic path and checked element-for-element
/// against the reference.
#[test]
fn two_block_transformer_stack_is_bit_true_under_60s() {
    let start = Instant::now();
    let (hidden, heads, seq) = (192, 3, 32);
    let mut layers = Vec::new();
    transformer_block(&mut layers, "block0", hidden, heads, seq, seq);
    transformer_block(&mut layers, "block1", hidden, heads, seq, seq);
    assert_eq!(layers.len(), 20);
    // The KV-quantization serving recipe: narrow every GEMM-shaped layer's
    // second operand to 4 bits, leave the memory-bound ops at 8-bit.
    for l in &mut layers {
        if l.is_compute() {
            *l = l.clone().with_bits(BitWidth::INT8, BitWidth::INT4);
        }
    }
    assert!(layers
        .iter()
        .any(|l| matches!(l.kind, LayerKind::MatMulQK { .. }) && l.weight_bits == BitWidth::INT4));

    let weights = WeightStore::synthesize(&layers, 0xBE27);
    let (lo, hi) = layers[0].act_bits.range(Signedness::Signed);
    let span = (hi - lo + 1) as u64;
    let x = Tensor::from_fn(&[hidden, seq, 1], |idx| {
        let i = (idx[0] * seq + idx[1]) as u64;
        lo + (mix(0x7E57 ^ i) % span) as i32
    });

    let ex = NetworkExecutor::new(SystolicArray::new(ArrayConfig::paper_default()));
    let trace = ex
        .execute(&layers, &x, &weights)
        .expect("transformer stack executes");
    let reference = ex.execute_reference(&layers, &x, &weights);
    assert_eq!(trace.output, reference, "transformer bit-true mismatch");
    assert_eq!(trace.output.shape(), &[hidden, seq, 1]);
    assert_eq!(trace.layers.len(), layers.len());

    // GEMM-shaped layers burn array cycles; softmax/norm/GELU do not.
    for (l, r) in layers.iter().zip(&trace.layers) {
        let gemm = !matches!(
            l.kind,
            LayerKind::Softmax { .. } | LayerKind::LayerNorm { .. } | LayerKind::Gelu { .. }
        );
        assert_eq!(r.cycles > 0, gemm, "{}: cycles {}", l.name, r.cycles);
    }

    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        elapsed < 60.0,
        "transformer bit-true took {elapsed:.1}s, budget is 60s"
    );
}
