use bpvec_sim::experiments::*;

#[test]
fn print_figures() {
    for (name, f) in [
        ("fig5", figure5()),
        ("fig6-base", figure6_baseline()),
        ("fig6-bpvec", figure6_bpvec()),
        ("fig7", figure7()),
        ("fig8-bf", figure8_bitfusion()),
        ("fig8-bpvec", figure8_bpvec()),
    ] {
        let rows: Vec<String> = f
            .rows
            .iter()
            .map(|r| format!("{}:{:.2}/{:.2}", r.network, r.speedup, r.energy_reduction))
            .collect();
        println!(
            "{name}: GM {:.2}x / {:.2}x | {}",
            f.geomean_speedup,
            f.geomean_energy,
            rows.join(" ")
        );
    }
}
