//! Bit-true execution at Table I scale.
//!
//! The packed bit-plane GEMM path exists so that *real* networks — not just
//! scaled-down stand-ins — can be executed bit-true and checked against the
//! reference integer pipeline. These tests do exactly that:
//!
//! * one full-size Table I layer (AlexNet conv1 at 224×224) through the
//!   systolic array vs `bpvec-dnn::reference`, exact equality;
//! * a complete AlexNet inference, end-to-end, under the paper's Table I
//!   heterogeneous bitwidth assignment, in well under a minute;
//! * a mixed-precision per-layer policy (`PrecisionPolicy::PerLayer`, with
//!   activation widths differing from weight widths) executing bit-true
//!   without any repacking to a uniform width.

use std::time::Instant;

use bpvec_core::{BitWidth, CvuConfig};
use bpvec_dnn::layer::{Layer, LayerKind};
use bpvec_dnn::{BitwidthPolicy, LayerPrecision, Network, NetworkId, PrecisionPolicy, Tensor};
use bpvec_sim::systolic::{ArrayConfig, SystolicArray};
use bpvec_sim::{NetworkExecutor, WeightStore};

fn paper_executor() -> NetworkExecutor {
    NetworkExecutor::new(SystolicArray::new(ArrayConfig::paper_default()))
}

/// Deterministic input image, clamped to the first layer's activation range.
fn image(channels: usize, hw: usize, bits: BitWidth, seed: u64) -> Tensor {
    let (lo, hi) = bits.range(bpvec_core::Signedness::Signed);
    let span = (hi - lo + 1) as u64;
    Tensor::from_fn(&[channels, hw, hw], |idx| {
        let i = (idx[0] * hw * hw + idx[1] * hw + idx[2]) as u64;
        let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        lo + (z % span) as i32
    })
}

/// One real Table I layer, full size: AlexNet conv1 (3→64 channels, 11×11
/// kernel, stride 4, 224×224 input — ~70M MACs) executed bit-true on the
/// packed path and checked element-for-element against the reference
/// convolution.
#[test]
fn alexnet_conv1_full_size_is_bit_true() {
    let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
    let conv1 = net.layer("conv1").expect("AlexNet has conv1").clone();
    assert!(
        matches!(
            conv1.kind,
            LayerKind::Conv2d {
                input_hw: (224, 224),
                ..
            }
        ),
        "conv1 must be the full-size 224x224 layer"
    );
    let layers = vec![conv1];
    let weights = WeightStore::synthesize(&layers, 0xA1EC);
    let input = image(3, 224, layers[0].act_bits, 7);
    let ex = paper_executor();
    let trace = ex
        .execute(&layers, &input, &weights)
        .expect("conv1 executes");
    let reference = ex.execute_reference(&layers, &input, &weights);
    assert_eq!(trace.output, reference, "conv1 bit-true mismatch");
    assert_eq!(trace.output.shape(), &[64, 55, 55]);
    assert!(trace.total_cycles() > 0);
}

/// A complete Table I AlexNet inference — all 11 layers at 224×224, under
/// the paper's heterogeneous bitwidth assignment (8-bit boundary layers,
/// 4-bit inner layers, mixed widths executing without repacking) — runs
/// bit-true end-to-end and matches the reference pipeline exactly. The
/// packed path is what makes this feasible: the acceptance bound is a full
/// minute, and the run (array + reference) fits comfortably inside it.
#[test]
fn full_alexnet_inference_is_bit_true_under_60s() {
    let start = Instant::now();
    let net = Network::build(NetworkId::AlexNet, BitwidthPolicy::Heterogeneous);
    let weights = WeightStore::synthesize(&net.layers, 0xA1EC);
    let input = image(3, 224, net.layers[0].act_bits, 11);
    let ex = paper_executor();
    let trace = ex
        .execute(&net.layers, &input, &weights)
        .expect("full AlexNet executes");
    let reference = ex.execute_reference(&net.layers, &input, &weights);
    assert_eq!(trace.output, reference, "AlexNet bit-true mismatch");
    assert_eq!(trace.output.shape(), &[1000]);
    assert_eq!(trace.layers.len(), net.layers.len());
    assert!(trace.total_cycles() > 0);
    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        elapsed < 60.0,
        "full AlexNet bit-true took {elapsed:.1}s, budget is 60s"
    );
}

/// Mixed per-layer precision from PR 3's `PrecisionPolicy`: every layer
/// carries its own `(activation, weight)` widths — including pairs where
/// the two operands differ — and the executor packs each layer's operands
/// at exactly those widths. Bit-true against the reference pipeline.
#[test]
fn per_layer_precision_policy_executes_bit_true_without_repacking() {
    let conv = |name: &str, ic, oc, k, p, hw| {
        Layer::new(
            name,
            LayerKind::Conv2d {
                in_channels: ic,
                out_channels: oc,
                kernel: (k, k),
                stride: (1, 1),
                padding: (p, p),
                input_hw: (hw, hw),
            },
        )
    };
    let mut layers = vec![
        conv("c1", 3, 8, 3, 1, 12),
        conv("c2", 8, 8, 3, 1, 12),
        Layer::new(
            "p1",
            LayerKind::Pool {
                channels: 8,
                kernel: (2, 2),
                stride: (2, 2),
                input_hw: (12, 12),
            },
        ),
        conv("c3", 8, 4, 1, 0, 6),
        Layer::new(
            "fc",
            LayerKind::FullyConnected {
                in_features: 4 * 6 * 6,
                out_features: 10,
            },
        ),
    ];
    let w = |b| BitWidth::new(b).unwrap();
    // Distinct width pair per layer, activations != weights on purpose.
    let policy = PrecisionPolicy::per_layer(vec![
        LayerPrecision::new(w(8), w(4)),
        LayerPrecision::new(w(4), w(2)),
        LayerPrecision::new(w(4), w(2)), // pool: annotation only
        LayerPrecision::new(w(6), w(3)),
        LayerPrecision::new(w(8), w(8)),
    ]);
    policy
        .apply(NetworkId::AlexNet, &mut layers)
        .expect("layer counts match");
    // The stack really is mixed-width (no uniform width to repack to).
    let widths: std::collections::HashSet<(u32, u32)> = layers
        .iter()
        .filter(|l| l.is_compute())
        .map(|l| (l.act_bits.bits(), l.weight_bits.bits()))
        .collect();
    assert!(widths.len() >= 3, "policy must produce mixed precision");
    assert!(
        layers.iter().any(|l| l.act_bits != l.weight_bits),
        "operand widths must differ"
    );

    let weights = WeightStore::synthesize(&layers, 0x9E15);
    let input = image(3, 12, layers[0].act_bits, 3);
    let ex = NetworkExecutor::new(SystolicArray::new(ArrayConfig {
        rows: 4,
        cols: 4,
        cvu: CvuConfig::paper_default(),
    }));
    let trace = ex
        .execute(&layers, &input, &weights)
        .expect("mixed stack executes");
    assert_eq!(
        trace.output,
        ex.execute_reference(&layers, &input, &weights)
    );
}
