//! Property tests over the analytical engine: the monotonicity and
//! dominance relations any sound performance/energy model must satisfy,
//! checked across randomized platform parameters.

use bpvec_dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec_sim::memory::ScratchpadSpec;
use bpvec_sim::{simulate, AcceleratorConfig, BatchRegime, DramSpec, SimConfig};
use proptest::prelude::*;

fn arb_network() -> impl Strategy<Value = (NetworkId, BitwidthPolicy)> {
    (
        prop_oneof![
            Just(NetworkId::AlexNet),
            Just(NetworkId::InceptionV1),
            Just(NetworkId::ResNet18),
            Just(NetworkId::ResNet50),
            Just(NetworkId::Rnn),
            Just(NetworkId::Lstm),
        ],
        prop_oneof![
            Just(BitwidthPolicy::Homogeneous8),
            Just(BitwidthPolicy::Heterogeneous)
        ],
    )
}

fn dram(gbps: f64) -> DramSpec {
    DramSpec {
        name: "sweep",
        bandwidth_gb_s: gbps,
        energy_pj_per_bit: 15.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// More bandwidth never increases latency.
    #[test]
    fn latency_is_monotone_in_bandwidth(
        (id, policy) in arb_network(),
        lo in 2.0f64..64.0,
        factor in 1.0f64..16.0,
    ) {
        let net = Network::build(id, policy);
        let a = simulate(&net, &SimConfig::new(AcceleratorConfig::bpvec(), dram(lo)));
        let b = simulate(
            &net,
            &SimConfig::new(AcceleratorConfig::bpvec(), dram(lo * factor)),
        );
        prop_assert!(b.latency_s <= a.latency_s * 1.0000001);
    }

    /// A larger scratchpad never increases DRAM traffic.
    #[test]
    fn traffic_is_monotone_in_scratchpad(
        (id, policy) in arb_network(),
        kb in 16u64..128,
    ) {
        let net = Network::build(id, policy);
        let mut small = AcceleratorConfig::bpvec();
        small.scratchpad = ScratchpadSpec { capacity_bytes: kb * 1024 };
        let mut large = small;
        large.scratchpad = ScratchpadSpec { capacity_bytes: 4 * kb * 1024 };
        let cfg = |a| SimConfig::new(a, DramSpec::ddr4());
        let t_small: u64 = simulate(&net, &cfg(small))
            .layers
            .iter()
            .map(|l| l.traffic_bytes)
            .sum();
        let t_large: u64 = simulate(&net, &cfg(large))
            .layers
            .iter()
            .map(|l| l.traffic_bytes)
            .sum();
        prop_assert!(t_large <= t_small, "{t_large} > {t_small}");
    }

    /// Latency is bounded below by both the compute roof and the memory
    /// roof (the engine can never beat its own physics).
    #[test]
    fn latency_respects_both_roofs((id, policy) in arb_network()) {
        let net = Network::build(id, policy);
        let cfg = SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4());
        let r = simulate(&net, &cfg);
        for layer in &r.layers {
            prop_assert!(layer.latency_s >= layer.compute_s - 1e-15);
            prop_assert!(layer.latency_s >= layer.memory_s - 1e-15);
        }
    }

    /// Batching responds sanely: the whole batch never finishes faster than
    /// a smaller batch, and for the weight-streaming recurrent models —
    /// where the paper's batching argument lives — bigger batches amortize
    /// the weight traffic, so per-inference latency never degrades. (For
    /// CNNs the per-inference direction is NOT monotone: larger batches can
    /// spill the scratchpad tiles and raise per-inference traffic.)
    #[test]
    fn batching_amortizes(
        (id, policy) in arb_network(),
        batch in 1u64..32,
    ) {
        let net = Network::build(id, policy);
        let mut small = SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4());
        small.batching = BatchRegime::fixed(batch);
        let mut large = small;
        large.batching = BatchRegime::fixed(batch * 4);
        let a = simulate(&net, &small);
        let b = simulate(&net, &large);
        let batch_latency = |r: &bpvec_sim::NetworkResult| r.latency_s * r.batch as f64;
        prop_assert!(batch_latency(&b) >= batch_latency(&a) * 0.98,
            "batch {batch}->{}: whole-batch latency shrank {} -> {}",
            batch * 4, batch_latency(&a), batch_latency(&b));
        if id.is_recurrent() {
            prop_assert!(b.latency_s <= a.latency_s * 1.02,
                "batch {batch}->{} latency {} -> {}", batch * 4, a.latency_s, b.latency_s);
        }
    }

    /// Energy and latency respond consistently to the memory system:
    /// HBM2 dominates DDR4 on both axes for every workload and design.
    #[test]
    fn hbm2_dominates_ddr4((id, policy) in arb_network()) {
        let net = Network::build(id, policy);
        for accel in [
            AcceleratorConfig::tpu_like(),
            AcceleratorConfig::bitfusion(),
            AcceleratorConfig::bpvec(),
        ] {
            let d = simulate(&net, &SimConfig::new(accel, DramSpec::ddr4()));
            let h = simulate(&net, &SimConfig::new(accel, DramSpec::hbm2()));
            prop_assert!(h.latency_s <= d.latency_s * 1.0000001);
            prop_assert!(h.energy_j <= d.energy_j * 1.0000001);
        }
    }
}
