//! Property tests over the shared cost model and per-layer precision:
//!
//! * a network's cost is exactly the sum of its per-layer costs under *any*
//!   precision policy;
//! * `CostModel`-cached results are bit-identical to the uncached engine
//!   across random policies, batches, platforms, and memories;
//! * shrinking any single layer's bitwidths never lowers the composable
//!   design's compute throughput (and never raises whole-network latency).

use bpvec_core::BitWidth;
use bpvec_dnn::{LayerPrecision, Network, NetworkId, PrecisionPolicy};
use bpvec_sim::{
    layer_cost, simulate, AcceleratorConfig, BatchRegime, CostModel, DramSpec, SimConfig,
};
use proptest::prelude::*;

fn arb_network_id() -> impl Strategy<Value = NetworkId> {
    prop_oneof![
        Just(NetworkId::AlexNet),
        Just(NetworkId::InceptionV1),
        Just(NetworkId::ResNet18),
        Just(NetworkId::ResNet50),
        Just(NetworkId::Rnn),
        Just(NetworkId::Lstm),
    ]
}

fn arb_width() -> impl Strategy<Value = BitWidth> {
    (1u32..=8).prop_map(|b| BitWidth::new(b).expect("1..=8 is valid"))
}

/// A seeded per-layer assignment for `id` (splitmix over the seed, widths
/// in 1..=8) — stands in for `proptest::collection`, which the offline
/// shim does not provide.
fn seeded_per_layer(id: NetworkId, seed: u64) -> PrecisionPolicy {
    let layers = Network::build(id, bpvec_dnn::BitwidthPolicy::Homogeneous8)
        .layers
        .len();
    let mut z = seed;
    let mut next = move || {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        BitWidth::new(1 + ((x ^ (x >> 31)) % 8) as u32).expect("1..=8")
    };
    PrecisionPolicy::per_layer(
        (0..layers)
            .map(|_| LayerPrecision::new(next(), next()))
            .collect(),
    )
}

fn arb_accel() -> impl Strategy<Value = AcceleratorConfig> {
    prop_oneof![
        Just(AcceleratorConfig::tpu_like()),
        Just(AcceleratorConfig::bitfusion()),
        Just(AcceleratorConfig::bpvec()),
    ]
}

fn arb_dram() -> impl Strategy<Value = DramSpec> {
    prop_oneof![Just(DramSpec::ddr4()), Just(DramSpec::hbm2())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) The network result under any precision policy is exactly the sum
    /// of its per-layer costs — no hidden cross-layer terms.
    #[test]
    fn network_cost_is_the_sum_of_layer_costs(
        id in arb_network_id(),
        (act, weight) in (arb_width(), arb_width()),
        per_layer_seed in proptest::num::u64::ANY,
        use_per_layer in proptest::bool::ANY,
        accel in arb_accel(),
        dram in arb_dram(),
        batch in 1u64..=32,
    ) {
        let policy = if use_per_layer {
            seeded_per_layer(id, per_layer_seed)
        } else {
            PrecisionPolicy::uniform_xw(act, weight)
        };
        let net = Network::build_precise(id, &policy).expect("policy applies");
        let mut cfg = SimConfig::new(accel, dram);
        cfg.batching = BatchRegime::fixed(batch);
        let r = simulate(&net, &cfg);
        let mut latency = 0.0f64;
        let mut energy = 0.0f64;
        for layer in &net.layers {
            let c = layer_cost(layer, &accel, &dram, batch);
            latency += c.latency_s;
            energy += c.core_energy_j + c.dram_energy_j;
        }
        // Same summation order as the engine: exactly equal, not just close.
        prop_assert_eq!(r.latency_s, latency / batch as f64);
        prop_assert_eq!(r.energy_j, energy / batch as f64);
        prop_assert_eq!(r.layers.len(), net.layers.len());
    }

    /// (b) Cached and uncached evaluation agree bit-for-bit across random
    /// policies, batches, platforms and memories — even when the cache is
    /// warm from *other* configurations.
    #[test]
    fn cost_model_is_bit_identical_to_the_engine(
        id in arb_network_id(),
        policy_seed in 0u32..5,
        per_layer_seed in proptest::num::u64::ANY,
        accel in arb_accel(),
        dram in arb_dram(),
        batch in 1u64..=32,
    ) {
        let policy = match policy_seed {
            0 => PrecisionPolicy::homogeneous8(),
            1 => PrecisionPolicy::heterogeneous(),
            2 => PrecisionPolicy::uniform(BitWidth::INT2),
            3 => PrecisionPolicy::uniform_xw(BitWidth::INT8, BitWidth::new(3).unwrap()),
            _ => seeded_per_layer(id, per_layer_seed),
        };
        let net = Network::build_precise(id, &policy).expect("policy applies");
        let mut cfg = SimConfig::new(accel, dram);
        cfg.batching = BatchRegime::fixed(batch);
        let model = CostModel::new();
        // Warm the cache with a different batch so hits and misses mix.
        let mut other = cfg;
        other.batching = BatchRegime::fixed(batch + 1);
        let _ = model.simulate(&net, &other);
        let cached = model.simulate(&net, &cfg);
        let direct = simulate(&net, &cfg);
        prop_assert_eq!(cached, direct);
        // And a second, fully-warm pass still agrees.
        let warm = model.simulate(&net, &cfg);
        prop_assert_eq!(warm, simulate(&net, &cfg));
    }

    /// (b') A randomly shared model across policies never contaminates
    /// entries: evaluating two different policies through one model gives
    /// each its own uncached truth.
    #[test]
    fn shared_model_keeps_policies_separate(
        id in arb_network_id(),
        batch in 1u64..=16,
    ) {
        let model = CostModel::new();
        let mut cfg = SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4());
        cfg.batching = BatchRegime::fixed(batch);
        for policy in PrecisionPolicy::paper_sweep() {
            let net = Network::build_precise(id, &policy).expect("uniform applies");
            prop_assert_eq!(model.simulate(&net, &cfg), simulate(&net, &cfg));
        }
    }

    /// (c) Shrinking any single layer's bitwidths never lowers compute
    /// throughput on the composable design: per-layer compute time and
    /// whole-network latency are monotone non-increasing in the width.
    #[test]
    fn throughput_is_monotone_as_one_layer_narrows(
        id in arb_network_id(),
        layer_frac in 0.0f64..1.0,
        wide in 2u32..=8,
        shrink in 1u32..=4,
        batch in 1u64..=16,
    ) {
        let base = Network::build(id, bpvec_dnn::BitwidthPolicy::Homogeneous8);
        let li = ((layer_frac * base.layers.len() as f64) as usize).min(base.layers.len() - 1);
        let narrow = wide.saturating_sub(shrink).max(1);
        let make = |bits: u32| {
            let widths: Vec<LayerPrecision> = base
                .layers
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    if i == li {
                        LayerPrecision::uniform(BitWidth::new(bits).unwrap())
                    } else {
                        LayerPrecision::uniform(BitWidth::INT8)
                    }
                })
                .collect();
            Network::build_precise(id, &PrecisionPolicy::per_layer(widths))
                .expect("lengths match")
        };
        let accel = AcceleratorConfig::bpvec();
        let dram = DramSpec::ddr4();
        let wide_net = make(wide);
        let narrow_net = make(narrow);
        // Per-layer: compute time never rises when the layer narrows.
        let cw = layer_cost(&wide_net.layers[li], &accel, &dram, batch);
        let cn = layer_cost(&narrow_net.layers[li], &accel, &dram, batch);
        prop_assert!(
            cn.compute_s <= cw.compute_s * 1.0000001,
            "layer {li}: {} -> {} bits raised compute {} -> {}",
            wide, narrow, cw.compute_s, cn.compute_s
        );
        // Traffic (and so memory time) never rises either.
        prop_assert!(cn.traffic_bytes <= cw.traffic_bytes);
        // Whole network: latency never rises, so throughput (2·MACs/latency,
        // MAC count unchanged) never falls.
        let mut cfg = SimConfig::new(accel, dram);
        cfg.batching = BatchRegime::fixed(batch);
        let rw = simulate(&wide_net, &cfg);
        let rn = simulate(&narrow_net, &cfg);
        prop_assert!(rn.latency_s <= rw.latency_s * 1.0000001);
        prop_assert!(rn.gops() >= rw.gops() * 0.9999999);
    }
}

/// The full uniform sweep end-to-end: on BPVeC, whole-network throughput is
/// monotone non-decreasing as every layer drops 8 → 2 bits (the paper's
/// core scaling result), while the non-composable baseline is flat on the
/// compute side.
#[test]
fn uniform_sweep_throughput_scales_on_the_composable_design_only() {
    let dram = DramSpec::hbm2();
    for id in [NetworkId::ResNet18, NetworkId::ResNet50] {
        let mut last_bp = 0.0f64;
        let mut first_tpu = None;
        for policy in PrecisionPolicy::paper_sweep() {
            let net = Network::build_precise(id, &policy).unwrap();
            let bp = simulate(&net, &SimConfig::new(AcceleratorConfig::bpvec(), dram));
            assert!(
                bp.gops() >= last_bp * 0.9999999,
                "{id}: throughput fell across the sweep"
            );
            last_bp = bp.gops();
            let tpu = simulate(&net, &SimConfig::new(AcceleratorConfig::tpu_like(), dram));
            let first = *first_tpu.get_or_insert(tpu.latency_s);
            // The TPU-like design gains only traffic reduction, never the
            // composition multiplier: its gain stays well under BPVeC's.
            assert!(tpu.latency_s <= first * 1.0000001);
        }
        let wide = Network::build_precise(id, &PrecisionPolicy::uniform(BitWidth::INT8)).unwrap();
        let bp_wide = simulate(&wide, &SimConfig::new(AcceleratorConfig::bpvec(), dram));
        assert!(
            last_bp > bp_wide.gops() * 2.0,
            "{id}: 2-bit throughput {last_bp} should be well above 8-bit {}",
            bp_wide.gops()
        );
    }
}
