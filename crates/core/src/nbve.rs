//! Narrow-Bitwidth Vector Engine (paper Figure 3a).
//!
//! An NBVE is a spatial array of `L` narrow multipliers whose outputs are
//! summed by a private adder tree. It consumes one bit-sliced sub-vector of
//! `X` and one of `W` and produces the single scalar `Σᵢ xᵢ[slice]·wᵢ[slice]`.
//!
//! Besides the arithmetic, this model tracks the *bit growth* through the
//! adder tree so the hardware-model crate can size adders exactly and so
//! tests can prove that the configured datapath never overflows.

use serde::{Deserialize, Serialize};

use crate::bitslice::SliceWidth;
use crate::error::CoreError;

/// Worst-case bit budget of the CVU-internal accumulators (the paper's
/// systolic columns accumulate into 64-bit registers).
pub const ACCUMULATOR_BITS: u32 = 64;

/// Bit-growth report for an NBVE's datapath at a given configuration.
///
/// All widths are for two's-complement (signed) representation, the widest
/// case: a signed-top-slice multiply produces an `(s+1)`-bit × `(s+1)`-bit
/// signed product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdderTreeReport {
    /// Bits of each multiplier output.
    pub product_bits: u32,
    /// Bits of the adder-tree root (after `ceil(log2(L))` doubling levels).
    pub sum_bits: u32,
    /// Number of adder levels in the tree.
    pub levels: u32,
}

/// A Narrow-Bitwidth Vector Engine: `lanes` multipliers of
/// `slice_width x slice_width` bits plus a private adder tree.
///
/// ```
/// use bpvec_core::{Nbve, SliceWidth};
/// let nbve = Nbve::new(SliceWidth::BIT2, 16);
/// let out = nbve.dot(&[1, 2, 3], &[3, 2, 1])?;
/// assert_eq!(out.value, 10);
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nbve {
    slice_width: SliceWidth,
    lanes: usize,
}

/// Result of one NBVE evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NbveOutput {
    /// The narrow dot-product scalar.
    pub value: i64,
    /// Multiplier lanes that carried real work (the rest idled).
    pub active_lanes: usize,
    /// Bits needed to represent the worst-case value at the tree root for
    /// this configuration.
    pub root_bits: u32,
}

impl Nbve {
    /// Creates an NBVE with `lanes` multipliers of `slice_width` operands.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`; an NBVE without multipliers is meaningless and
    /// constructing one is a programming error, not a runtime condition.
    #[must_use]
    pub fn new(slice_width: SliceWidth, lanes: usize) -> Self {
        assert!(lanes > 0, "an NBVE needs at least one multiplier lane");
        Nbve { slice_width, lanes }
    }

    /// The slice width of the multiplier operands.
    #[must_use]
    pub fn slice_width(&self) -> SliceWidth {
        self.slice_width
    }

    /// The vector length `L` (number of multiplier lanes).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Worst-case bit growth through this NBVE's datapath.
    ///
    /// Signed-aware slices occupy `s+1` bits, so products need `2(s+1)` bits
    /// minus one (two's-complement multiply of n-bit × m-bit fits n+m bits);
    /// each adder level adds one bit.
    #[must_use]
    pub fn adder_tree_report(&self) -> AdderTreeReport {
        let s = self.slice_width.bits();
        let product_bits = 2 * (s + 1);
        let levels = (self.lanes as u32).next_power_of_two().trailing_zeros();
        AdderTreeReport {
            product_bits,
            sum_bits: product_bits + levels,
            levels,
        }
    }

    /// Computes the narrow dot-product of two slice sub-vectors.
    ///
    /// Inputs must already be bit-slices: each element must fit the signed
    /// `(s+1)`-bit slice domain `[-2^(s-1), 2^s - 1]` (which covers both an
    /// unsigned `s`-bit slice and a signed top slice). Vectors longer than
    /// `L` are folded over the lanes in multiple "beats", mirroring temporal
    /// reuse of the same engine.
    ///
    /// # Errors
    ///
    /// * [`CoreError::LengthMismatch`] — operand vectors differ in length.
    /// * [`CoreError::ValueOutOfRange`] — an input is not a valid slice value.
    pub fn dot(&self, xs: &[i32], ws: &[i32]) -> Result<NbveOutput, CoreError> {
        if xs.len() != ws.len() {
            return Err(CoreError::LengthMismatch {
                left: xs.len(),
                right: ws.len(),
            });
        }
        let s = self.slice_width.bits();
        let lo = -(1i32 << (s - 1));
        let hi = (1i32 << s) - 1;
        for &v in xs.iter().chain(ws.iter()) {
            if v < lo || v > hi {
                return Err(CoreError::ValueOutOfRange {
                    value: v,
                    bits: s + 1,
                    signed: true,
                });
            }
        }
        let mut value = 0i64;
        for (x, w) in xs.iter().zip(ws) {
            value += (*x as i64) * (*w as i64);
        }
        let report = self.adder_tree_report();
        Ok(NbveOutput {
            value,
            active_lanes: xs.len().min(self.lanes),
            root_bits: report.sum_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_matches_reference() {
        let nbve = Nbve::new(SliceWidth::BIT2, 16);
        let xs = vec![3, 2, 1, 0, 3, 3];
        let ws = vec![1, 2, 3, 3, 0, 1];
        let out = nbve.dot(&xs, &ws).unwrap();
        assert_eq!(out.value, 3 + 4 + 3 + 3);
        assert_eq!(out.active_lanes, 6);
    }

    #[test]
    fn signed_top_slices_are_accepted() {
        let nbve = Nbve::new(SliceWidth::BIT2, 4);
        // 2-bit signed slices span -2..=1, unsigned span 0..=3; the multiplier
        // domain is the union -2..=3.
        let out = nbve.dot(&[-2, 3], &[3, -2]).unwrap();
        assert_eq!(out.value, -12);
    }

    #[test]
    fn out_of_domain_slice_is_rejected() {
        let nbve = Nbve::new(SliceWidth::BIT2, 4);
        assert!(nbve.dot(&[4], &[0]).is_err());
        assert!(nbve.dot(&[0], &[-3]).is_err());
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let nbve = Nbve::new(SliceWidth::BIT2, 4);
        assert!(matches!(
            nbve.dot(&[1, 2], &[1]),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn adder_tree_growth_l16_2bit() {
        // Paper design point: 2-bit slices, L = 16.
        let report = Nbve::new(SliceWidth::BIT2, 16).adder_tree_report();
        assert_eq!(report.product_bits, 6); // 3b x 3b signed products
        assert_eq!(report.levels, 4);
        assert_eq!(report.sum_bits, 10);
    }

    #[test]
    fn adder_tree_growth_l1_has_no_levels() {
        let report = Nbve::new(SliceWidth::BIT2, 1).adder_tree_report();
        assert_eq!(report.levels, 0);
        assert_eq!(report.sum_bits, report.product_bits);
    }

    #[test]
    #[should_panic(expected = "at least one multiplier lane")]
    fn zero_lanes_panics() {
        let _ = Nbve::new(SliceWidth::BIT2, 0);
    }

    proptest! {
        /// The reported root width is always sufficient: no in-domain input
        /// of length <= L can exceed `sum_bits` (signed representation).
        #[test]
        fn root_width_is_sufficient(
            lanes in 1usize..=32,
            s in prop_oneof![Just(1u32), Just(2), Just(4)],
            seed in proptest::num::u64::ANY,
        ) {
            use rand::{Rng, SeedableRng};
            let sw = SliceWidth::new(s).unwrap();
            let nbve = Nbve::new(sw, lanes);
            let report = nbve.adder_tree_report();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let lo = -(1i32 << (s - 1));
            let hi = (1i32 << s) - 1;
            let xs: Vec<i32> = (0..lanes).map(|_| rng.gen_range(lo..=hi)).collect();
            let ws: Vec<i32> = (0..lanes).map(|_| rng.gen_range(lo..=hi)).collect();
            let out = nbve.dot(&xs, &ws).unwrap();
            let bound = 1i64 << (report.sum_bits - 1);
            prop_assert!(out.value < bound && out.value >= -bound,
                "value {} exceeds {} bits", out.value, report.sum_bits);
        }
    }
}
