//! Narrow-Bitwidth Vector Engine (paper Figure 3a).
//!
//! An NBVE is a spatial array of `L` narrow multipliers whose outputs are
//! summed by a private adder tree. It consumes one bit-sliced sub-vector of
//! `X` and one of `W` and produces the single scalar `Σᵢ xᵢ[slice]·wᵢ[slice]`.
//!
//! Besides the arithmetic, this model tracks the *bit growth* through the
//! adder tree so the hardware-model crate can size adders exactly and so
//! tests can prove that the configured datapath never overflows.

use serde::{Deserialize, Serialize};

use crate::bitslice::SliceWidth;
use crate::error::CoreError;

/// Worst-case bit budget of the CVU-internal accumulators (the paper's
/// systolic columns accumulate into 64-bit registers).
pub const ACCUMULATOR_BITS: u32 = 64;

/// Bit-growth report for an NBVE's datapath at a given configuration.
///
/// All widths are for two's-complement (signed) representation, the widest
/// case: a signed-top-slice multiply produces an `(s+1)`-bit × `(s+1)`-bit
/// signed product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdderTreeReport {
    /// Bits of each multiplier output.
    pub product_bits: u32,
    /// Bits of the adder-tree root (after `ceil(log2(L))` doubling levels).
    pub sum_bits: u32,
    /// Number of adder levels in the tree.
    pub levels: u32,
}

/// A Narrow-Bitwidth Vector Engine: `lanes` multipliers of
/// `slice_width x slice_width` bits plus a private adder tree.
///
/// ```
/// use bpvec_core::{Nbve, SliceWidth};
/// let nbve = Nbve::new(SliceWidth::BIT2, 16);
/// let out = nbve.dot(&[1, 2, 3], &[3, 2, 1])?;
/// assert_eq!(out.value, 10);
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nbve {
    slice_width: SliceWidth,
    lanes: usize,
}

/// Result of one NBVE evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NbveOutput {
    /// The narrow dot-product scalar.
    pub value: i64,
    /// Multiplier lanes that carried real work (the rest idled).
    pub active_lanes: usize,
    /// Bits needed to represent the worst-case value at the tree root for
    /// this configuration.
    pub root_bits: u32,
}

impl Nbve {
    /// Creates an NBVE with `lanes` multipliers of `slice_width` operands.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`; an NBVE without multipliers is meaningless and
    /// constructing one is a programming error, not a runtime condition.
    #[must_use]
    pub fn new(slice_width: SliceWidth, lanes: usize) -> Self {
        assert!(lanes > 0, "an NBVE needs at least one multiplier lane");
        Nbve { slice_width, lanes }
    }

    /// The slice width of the multiplier operands.
    #[must_use]
    pub fn slice_width(&self) -> SliceWidth {
        self.slice_width
    }

    /// The vector length `L` (number of multiplier lanes).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Worst-case bit growth through this NBVE's datapath.
    ///
    /// Signed-aware slices occupy `s+1` bits, so products need `2(s+1)` bits
    /// minus one (two's-complement multiply of n-bit × m-bit fits n+m bits);
    /// each adder level adds one bit.
    #[must_use]
    pub fn adder_tree_report(&self) -> AdderTreeReport {
        let s = self.slice_width.bits();
        let product_bits = 2 * (s + 1);
        let levels = (self.lanes as u32).next_power_of_two().trailing_zeros();
        AdderTreeReport {
            product_bits,
            sum_bits: product_bits + levels,
            levels,
        }
    }

    /// Computes the narrow dot-product of two slice sub-vectors.
    ///
    /// Inputs must already be bit-slices: each element must fit the signed
    /// `(s+1)`-bit slice domain `[-2^(s-1), 2^s - 1]` (which covers both an
    /// unsigned `s`-bit slice and a signed top slice). Vectors longer than
    /// `L` are folded over the lanes in multiple "beats", mirroring temporal
    /// reuse of the same engine.
    ///
    /// # Errors
    ///
    /// * [`CoreError::LengthMismatch`] — operand vectors differ in length.
    /// * [`CoreError::ValueOutOfRange`] — an input is not a valid slice value.
    pub fn dot(&self, xs: &[i32], ws: &[i32]) -> Result<NbveOutput, CoreError> {
        if xs.len() != ws.len() {
            return Err(CoreError::LengthMismatch {
                left: xs.len(),
                right: ws.len(),
            });
        }
        let s = self.slice_width.bits();
        let lo = -(1i32 << (s - 1));
        let hi = (1i32 << s) - 1;
        for &v in xs.iter().chain(ws.iter()) {
            if v < lo || v > hi {
                return Err(CoreError::ValueOutOfRange {
                    value: v,
                    bits: s + 1,
                    signed: true,
                });
            }
        }
        let mut value = 0i64;
        for (x, w) in xs.iter().zip(ws) {
            value += (*x as i64) * (*w as i64);
        }
        let report = self.adder_tree_report();
        Ok(NbveOutput {
            value,
            active_lanes: xs.len().min(self.lanes),
            root_bits: report.sum_bits,
        })
    }
}

/// The word-level narrow dot-product an NBVE computes — the packed-plane
/// kernel behind [`crate::PackedSliceMatrix`].
///
/// `a` and `b` are equal-length runs of `u64` words holding `slice_width`-bit
/// slice fields packed little-endian (unused tail fields must be zero). The
/// return value is `Σᵢ aᵢ·bᵢ` over the fields, with a plane flagged
/// `*_signed_top` interpreted as two's-complement `s`-bit values (the
/// most-significant slice of a signed operand) and everything else as
/// unsigned `s`-bit magnitudes.
///
/// This is a dispatched kernel: the realization is picked once per process
/// by [`crate::kernels::active_tier`] — AVX-512 `vpopcntq` or AVX2
/// vpshufb-popcount lanes where the CPU supports them, with the portable
/// scalar kernel as the always-correct fallback (and `BPVEC_KERNEL=scalar` /
/// `BPVEC_FORCE_SCALAR=1` forcing it). All tiers are bit-identical; see
/// [`crate::kernels`] for the dispatch and fallback contract. The scalar
/// shapes (allocation-free, word-streaming):
///
/// * **1-bit slices** — one `AND` + `popcount` per word; sign flags flip the
///   result's sign (a set bit in a signed 1-bit top plane weighs −1).
/// * **2/4/8-bit slices** — SWAR multiply-accumulate: each word's fields are
///   split into `s` one-bit sub-planes with a mask (`(w >> p) & 0x5555…`),
///   and every sub-plane pair contributes `2^(p+q) · popcount(aₚ & b_q)`.
///   The top sub-plane of a signed plane carries weight `−2^(s−1)`, which is
///   exactly two's complement, so no correction pass is needed.
///
/// # Panics
///
/// Panics if the word runs differ in length (callers pack operands for the
/// same vector length).
#[must_use]
pub fn slice_dot_words(
    a: &[u64],
    b: &[u64],
    slice_width: SliceWidth,
    a_signed_top: bool,
    b_signed_top: bool,
) -> i64 {
    slice_dot_words_with(
        crate::kernels::active_tier(),
        a,
        b,
        slice_width,
        a_signed_top,
        b_signed_top,
    )
}

/// [`slice_dot_words`] through an explicit kernel tier — the entry point
/// dispatch-equality tests and benches use to pin every available tier
/// against the scalar reference on the same inputs.
///
/// # Panics
///
/// Panics if the word runs differ in length, or if `tier` is not available
/// on this CPU (see [`crate::kernels::available_tiers`]).
#[must_use]
pub fn slice_dot_words_with(
    tier: crate::kernels::KernelTier,
    a: &[u64],
    b: &[u64],
    slice_width: SliceWidth,
    a_signed_top: bool,
    b_signed_top: bool,
) -> i64 {
    assert_eq!(a.len(), b.len(), "packed slice planes differ in word count");
    assert!(
        tier <= crate::kernels::detected_tier(),
        "kernel tier {tier} is not available on this CPU"
    );
    let a_planes = [a];
    let b_planes = [b];
    crate::kernels::weighted_dot(
        tier,
        &crate::kernels::PlanesRef {
            planes: &a_planes,
            s: slice_width.bits(),
            neg_top: a_signed_top,
        },
        &crate::kernels::PlanesRef {
            planes: &b_planes,
            s: slice_width.bits(),
            neg_top: b_signed_top,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_matches_reference() {
        let nbve = Nbve::new(SliceWidth::BIT2, 16);
        let xs = vec![3, 2, 1, 0, 3, 3];
        let ws = vec![1, 2, 3, 3, 0, 1];
        let out = nbve.dot(&xs, &ws).unwrap();
        assert_eq!(out.value, 3 + 4 + 3 + 3);
        assert_eq!(out.active_lanes, 6);
    }

    #[test]
    fn signed_top_slices_are_accepted() {
        let nbve = Nbve::new(SliceWidth::BIT2, 4);
        // 2-bit signed slices span -2..=1, unsigned span 0..=3; the multiplier
        // domain is the union -2..=3.
        let out = nbve.dot(&[-2, 3], &[3, -2]).unwrap();
        assert_eq!(out.value, -12);
    }

    #[test]
    fn out_of_domain_slice_is_rejected() {
        let nbve = Nbve::new(SliceWidth::BIT2, 4);
        assert!(nbve.dot(&[4], &[0]).is_err());
        assert!(nbve.dot(&[0], &[-3]).is_err());
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let nbve = Nbve::new(SliceWidth::BIT2, 4);
        assert!(matches!(
            nbve.dot(&[1, 2], &[1]),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn adder_tree_growth_l16_2bit() {
        // Paper design point: 2-bit slices, L = 16.
        let report = Nbve::new(SliceWidth::BIT2, 16).adder_tree_report();
        assert_eq!(report.product_bits, 6); // 3b x 3b signed products
        assert_eq!(report.levels, 4);
        assert_eq!(report.sum_bits, 10);
    }

    #[test]
    fn adder_tree_growth_l1_has_no_levels() {
        let report = Nbve::new(SliceWidth::BIT2, 1).adder_tree_report();
        assert_eq!(report.levels, 0);
        assert_eq!(report.sum_bits, report.product_bits);
    }

    #[test]
    #[should_panic(expected = "at least one multiplier lane")]
    fn zero_lanes_panics() {
        let _ = Nbve::new(SliceWidth::BIT2, 0);
    }

    /// Packs slice values (each in the `s`-bit field domain) into words the
    /// way `PackedSliceMatrix` lays them out, two's-complement per field.
    fn pack_fields(vals: &[i32], s: u32) -> Vec<u64> {
        let fpw = (64 / s) as usize;
        let mut words = vec![0u64; vals.len().div_ceil(fpw)];
        for (i, &v) in vals.iter().enumerate() {
            let field = (v as u32 as u64) & ((1 << s) - 1);
            words[i / fpw] |= field << ((i % fpw) as u32 * s);
        }
        words
    }

    #[test]
    fn word_kernel_matches_scalar_dot_fixture() {
        // 2-bit slices, mixed signed-top and unsigned planes.
        let a = [3, 0, 2, 1, 3, 3, 0, 1];
        let b = [1, 2, 3, 0, 2, 1, 3, 3];
        let scalar: i64 = a.iter().zip(&b).map(|(&x, &y)| i64::from(x * y)).sum();
        let aw = pack_fields(&a, 2);
        let bw = pack_fields(&b, 2);
        assert_eq!(
            slice_dot_words(&aw, &bw, SliceWidth::BIT2, false, false),
            scalar
        );
        // Signed-top planes: values in -2..=1.
        let at = [-2, 1, 0, -1, 1, -2, 0, 1];
        let scalar_t: i64 = at.iter().zip(&b).map(|(&x, &y)| i64::from(x * y)).sum();
        let atw = pack_fields(&at, 2);
        assert_eq!(
            slice_dot_words(&atw, &bw, SliceWidth::BIT2, true, false),
            scalar_t
        );
    }

    #[test]
    fn word_kernel_1bit_sign_combinations() {
        let a = [1, 0, 1, 1, 0];
        let b = [1, 1, 1, 0, 0];
        let aw = pack_fields(&a, 1);
        let bw = pack_fields(&b, 1);
        // Two coincident set bits.
        assert_eq!(slice_dot_words(&aw, &bw, SliceWidth::BIT1, false, false), 2);
        assert_eq!(slice_dot_words(&aw, &bw, SliceWidth::BIT1, true, false), -2);
        assert_eq!(slice_dot_words(&aw, &bw, SliceWidth::BIT1, false, true), -2);
        // (-1)·(-1) = 1 per pair.
        assert_eq!(slice_dot_words(&aw, &bw, SliceWidth::BIT1, true, true), 2);
    }

    proptest! {
        /// The word kernel agrees with `Nbve::dot` (the scalar narrow
        /// dot-product) for every slice width and sign-flag combination.
        #[test]
        fn word_kernel_matches_nbve_dot(
            s in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
            a_signed in proptest::bool::ANY,
            b_signed in proptest::bool::ANY,
            seed in proptest::num::u64::ANY,
        ) {
            use rand::{Rng, SeedableRng};
            let sw = SliceWidth::new(s).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(0..200);
            let range = |signed: bool| -> (i32, i32) {
                if signed { (-(1 << (s - 1)), (1 << (s - 1)) - 1) } else { (0, (1 << s) - 1) }
            };
            let (alo, ahi) = range(a_signed);
            let (blo, bhi) = range(b_signed);
            let a: Vec<i32> = (0..n).map(|_| rng.gen_range(alo..=ahi)).collect();
            let b: Vec<i32> = (0..n).map(|_| rng.gen_range(blo..=bhi)).collect();
            let scalar = Nbve::new(sw, 16).dot(&a, &b).unwrap().value;
            let aw = pack_fields(&a, s);
            let bw = pack_fields(&b, s);
            prop_assert_eq!(slice_dot_words(&aw, &bw, sw, a_signed, b_signed), scalar);
        }

        /// The reported root width is always sufficient: no in-domain input
        /// of length <= L can exceed `sum_bits` (signed representation).
        #[test]
        fn root_width_is_sufficient(
            lanes in 1usize..=32,
            s in prop_oneof![Just(1u32), Just(2), Just(4)],
            seed in proptest::num::u64::ANY,
        ) {
            use rand::{Rng, SeedableRng};
            let sw = SliceWidth::new(s).unwrap();
            let nbve = Nbve::new(sw, lanes);
            let report = nbve.adder_tree_report();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let lo = -(1i32 << (s - 1));
            let hi = (1i32 << s) - 1;
            let xs: Vec<i32> = (0..lanes).map(|_| rng.gen_range(lo..=hi)).collect();
            let ws: Vec<i32> = (0..lanes).map(|_| rng.gen_range(lo..=hi)).collect();
            let out = nbve.dot(&xs, &ws).unwrap();
            let bound = 1i64 << (report.sum_bits - 1);
            prop_assert!(out.value < bound && out.value >= -bound,
                "value {} exceeds {} bits", out.value, report.sum_bits);
        }
    }
}
