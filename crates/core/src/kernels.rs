//! Runtime-dispatched SIMD realizations of the packed slice-plane kernels.
//!
//! Every packed dot in this crate reduces to one primitive: a *weighted
//! sub-plane popcount*. Each operand is a run of ≤ 8 one-bit sub-planes
//! (bit `t` of the padded two's-complement pattern, extracted across the
//! whole vector), and the dot-product is
//!
//! ```text
//!   Σ_{i,l}  w_i · w_l · popcount(asub_i & bsub_l)
//! ```
//!
//! where `w_t = 2^t`, negated for the top bit of a signed operand (two's
//! complement). [`crate::nbve::slice_dot_words`] is this primitive over a
//! single slice plane per operand; the fused [`crate::PackedSliceMatrix::dot`]
//! is the same primitive over all planes at once.
//!
//! This module provides three interchangeable realizations ("tiers"):
//!
//! * [`KernelTier::Scalar`] — portable u64 popcount/SWAR, always available,
//!   always correct. This is the reference the SIMD tiers are pinned to.
//! * [`KernelTier::Avx2`] — 256-bit lanes, AND + vpshufb nibble-LUT
//!   popcount (Mula/Harley-Seal style) + `vpsadbw` lane reduction, with the
//!   SWAR significance weighting applied in-register via `vpsllq`.
//! * [`KernelTier::Avx512`] — 512-bit lanes with native `vpopcntq`
//!   (AVX-512 VPOPCNTDQ), the fastest path on modern x86 servers.
//!
//! The active tier is chosen **once** per process by
//! [`active_tier`]: runtime CPU-feature detection
//! (`is_x86_feature_detected!`) cached in a `OnceLock`, overridable for
//! testing and CI via the `BPVEC_KERNEL` environment variable
//! (`scalar` | `avx2` | `avx512` | `auto`) or `BPVEC_FORCE_SCALAR=1`.
//! Requesting a tier the host cannot run falls back to the best available
//! one, so an override never produces wrong answers — only the scalar
//! fallback guarantee, exercised end-to-end by the `BPVEC_KERNEL=scalar`
//! CI leg. Non-x86 targets (NEON et al.) currently always take the scalar
//! tier; the dispatch table is where a future `std::arch` aarch64 kernel
//! slots in.
//!
//! Correctness contract: for every [`crate::BitWidth`] ×
//! [`crate::SliceWidth`] × [`crate::Signedness`] combination and every
//! vector length (including 0, lane-fraction and unaligned tails), all
//! tiers return **bit-identical** results — property-pinned in
//! `tests/kernel_dispatch.rs` and `tests/packed_properties.rs`.

use std::fmt;
use std::sync::OnceLock;

/// One realization of the packed slice-plane kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// Portable u64 popcount/SWAR — always available, always correct.
    Scalar,
    /// 256-bit AVX2: vpshufb nibble-LUT popcount + vpsadbw reduction.
    Avx2,
    /// 512-bit AVX-512 (F/BW/VL/VPOPCNTDQ): native `vpopcntq`.
    Avx512,
}

impl KernelTier {
    /// Stable lowercase name (used by `BPVEC_KERNEL` and metrics keys).
    ///
    /// ```
    /// use bpvec_core::KernelTier;
    /// assert_eq!(KernelTier::Scalar.name(), "scalar");
    /// assert_eq!(KernelTier::Avx512.to_string(), "avx512");
    /// ```
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }

    /// u64 words processed per SIMD iteration (1 for the scalar tier).
    #[must_use]
    pub fn lane_words(self) -> usize {
        match self {
            KernelTier::Scalar => 1,
            KernelTier::Avx2 => 4,
            KernelTier::Avx512 => 8,
        }
    }
}

impl fmt::Display for KernelTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The widest tier this CPU can execute (ignores overrides).
#[must_use]
pub fn detected_tier() -> KernelTier {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512vl")
            && is_x86_feature_detected!("avx512vpopcntdq")
        {
            return KernelTier::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return KernelTier::Avx2;
        }
    }
    KernelTier::Scalar
}

/// Every tier the host can run, narrowest first (always starts with
/// `Scalar`). Tests iterate this to pin SIMD == scalar on whatever
/// hardware they land on.
///
/// ```
/// use bpvec_core::kernels::{available_tiers, KernelTier};
/// let tiers = available_tiers();
/// assert_eq!(tiers[0], KernelTier::Scalar);
/// assert!(tiers.windows(2).all(|w| w[0] < w[1]), "narrowest first");
/// ```
#[must_use]
pub fn available_tiers() -> Vec<KernelTier> {
    let best = detected_tier();
    [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Avx512]
        .into_iter()
        .filter(|&t| t <= best)
        .collect()
}

/// The tier every dispatched kernel in this process uses, resolved once:
/// the widest tier the CPU supports, clamped by the `BPVEC_KERNEL`
/// (`scalar` | `avx2` | `avx512` | `auto`) or `BPVEC_FORCE_SCALAR=1`
/// environment overrides. An override naming a tier the host lacks falls
/// back to the best available tier at or below the request.
///
/// # Panics
///
/// Panics if `BPVEC_KERNEL` is set to an unknown value (a configuration
/// error worth failing loudly on, not a runtime condition).
#[must_use]
pub fn active_tier() -> KernelTier {
    static ACTIVE: OnceLock<KernelTier> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let best = detected_tier();
        if let Ok(v) = std::env::var("BPVEC_FORCE_SCALAR") {
            if !v.is_empty() && v != "0" {
                return KernelTier::Scalar;
            }
        }
        let requested = match std::env::var("BPVEC_KERNEL") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "" | "auto" => best,
                "scalar" => KernelTier::Scalar,
                "avx2" => KernelTier::Avx2,
                "avx512" => KernelTier::Avx512,
                other => panic!("BPVEC_KERNEL must be scalar|avx2|avx512|auto, got `{other}`"),
            },
            Err(_) => best,
        };
        requested.min(best)
    })
}

/// Sub-plane extraction mask: bit 0 of every `s`-bit field set
/// (`0x5555…` for 2-bit fields, `0x1111…` for 4-bit, `0x0101…` for 8-bit,
/// all-ones for 1-bit).
#[inline]
#[must_use]
pub(crate) fn subplane_mask(s: u32) -> u64 {
    u64::MAX / ((1u64 << s) - 1)
}

/// One packed operand as the kernels see it: up to 8 equal-length slice
/// planes of `s`-bit fields, whose padded two's-complement bit pattern is
/// `planes.len() * s` bits wide; `neg_top` marks the top bit's weight
/// negative (the signed case).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanesRef<'a> {
    /// Slice planes, least-significant first; all the same word count.
    pub planes: &'a [&'a [u64]],
    /// Field width of each plane.
    pub s: u32,
    /// Top bit weighs `-2^(bits-1)` (two's complement) instead of `+`.
    pub neg_top: bool,
}

impl<'a> PlanesRef<'a> {
    /// Total sub-plane (bit) count: `planes.len() * s`.
    #[inline]
    fn bits(&self) -> usize {
        self.planes.len() * self.s as usize
    }

    /// Words per plane.
    #[inline]
    fn words(&self) -> usize {
        self.planes.first().map_or(0, |p| p.len())
    }
}

/// Largest supported operand width in sub-planes (8-bit operands).
pub(crate) const MAX_BITS: usize = 8;

/// Words per extraction segment for the single-dot SIMD paths: buffers of
/// `MAX_BITS × SEG_WORDS` u64 fit comfortably in L1 while amortizing the
/// per-segment horizontal reduction.
const SEG_WORDS: usize = 64;

/// Extracts the one-bit sub-planes of `op` into `out`, bit-major
/// (`out[t * wpad .. t * wpad + words]` is sub-plane `t`), zero-padding
/// each row to `wpad` words so SIMD loops never need a masked tail.
///
/// `out` must hold at least `op.bits() * wpad` words; `wpad >= op.words()`.
pub(crate) fn extract_subplanes(op: &PlanesRef<'_>, wpad: usize, out: &mut [u64]) {
    let s = op.s as usize;
    let mask = subplane_mask(op.s);
    let words = op.words();
    debug_assert!(wpad >= words);
    for (j, plane) in op.planes.iter().enumerate() {
        for p in 0..s {
            let row = &mut out[(j * s + p) * wpad..(j * s + p) * wpad + wpad];
            for (dst, &w) in row.iter_mut().zip(plane.iter()) {
                *dst = (w >> p) & mask;
            }
            row[words..].fill(0);
        }
    }
}

/// The weighted sub-plane popcount dot over pre-extracted, zero-padded
/// sub-plane buffers (`wpad` words per row, `wpad` a multiple of the
/// widest SIMD lane). This is the hot inner kernel of the blocked GEMM:
/// extraction is hoisted out by the caller and amortized across outputs.
#[inline]
#[allow(clippy::too_many_arguments)] // flat scalars keep the hot kernel call ABI-cheap
pub(crate) fn dot_subplanes(
    tier: KernelTier,
    asub: &[u64],
    bsub: &[u64],
    wpad: usize,
    abits: usize,
    bbits: usize,
    neg_a: bool,
    neg_b: bool,
) -> i64 {
    debug_assert!(abits <= MAX_BITS && bbits <= MAX_BITS);
    debug_assert!(asub.len() >= abits * wpad && bsub.len() >= bbits * wpad);
    match tier {
        KernelTier::Scalar => scalar::dot_subplanes(asub, bsub, wpad, abits, bbits, neg_a, neg_b),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => {
            debug_assert_eq!(wpad % 4, 0);
            // SAFETY: dispatched only when AVX2 was detected at runtime.
            unsafe { avx2::dot_subplanes(asub, bsub, wpad, abits, bbits, neg_a, neg_b) }
        }
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx512 => {
            debug_assert_eq!(wpad % 8, 0);
            // SAFETY: dispatched only when AVX-512 F/BW/VL/VPOPCNTDQ were
            // detected at runtime.
            unsafe { avx512::dot_subplanes(asub, bsub, wpad, abits, bbits, neg_a, neg_b) }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::dot_subplanes(asub, bsub, wpad, abits, bbits, neg_a, neg_b),
    }
}

/// Pads a word count up to a whole number of widest-SIMD lanes (8 words),
/// so every tier's chunked loop divides it exactly (zero-padded tails are
/// inert under AND + popcount).
#[inline]
///
/// ```
/// use bpvec_core::kernels::pad_words;
/// assert_eq!(pad_words(0), 0);
/// assert_eq!(pad_words(1), 8);
/// assert_eq!(pad_words(8), 8);
/// assert_eq!(pad_words(9), 16);
/// ```
#[must_use]
pub fn pad_words(words: usize) -> usize {
    words.div_ceil(8) * 8
}

/// Columns per stationary-operand panel in the blocked packed GEMM: as many
/// columns as keep the extracted sub-plane working set (`bbits × wpad`
/// words per column) inside an L1-sized target, clamped to `[1, 64]`.
/// Exposed so the executor can report the tile geometry it ran with.
///
/// ```
/// use bpvec_core::kernels::col_panel_len;
/// // Narrow, short operands fit many columns per panel...
/// assert_eq!(col_panel_len(2, 8), 64);
/// // ...wide, long ones fall back toward single-column panels.
/// assert_eq!(col_panel_len(8, 4096), 1);
/// ```
#[must_use]
pub fn col_panel_len(bbits: usize, wpad: usize) -> usize {
    const L1_TARGET_BYTES: usize = 16 * 1024;
    (L1_TARGET_BYTES / (bbits.max(1) * wpad.max(1) * 8)).clamp(1, 64)
}

/// The full weighted sub-plane popcount dot of two plane sets, through
/// `tier`. SIMD tiers extract sub-planes segment-by-segment into stack
/// buffers (allocation-free) and stream the padded inner kernel; the
/// scalar tier runs the original fused SWAR loop untouched.
pub(crate) fn weighted_dot(tier: KernelTier, a: &PlanesRef<'_>, b: &PlanesRef<'_>) -> i64 {
    debug_assert_eq!(a.s, b.s, "operands must share a slice width");
    debug_assert_eq!(a.words(), b.words(), "operands must share a word count");
    if tier == KernelTier::Scalar {
        return scalar::weighted_dot(a, b);
    }
    let (abits, bbits) = (a.bits(), b.bits());
    if abits == 0 || bbits == 0 {
        return 0;
    }
    let words = a.words();
    let mut abuf = [0u64; MAX_BITS * SEG_WORDS];
    let mut bbuf = [0u64; MAX_BITS * SEG_WORDS];
    let mut total = 0i64;
    let mut lo = 0usize;
    while lo < words {
        let seg = SEG_WORDS.min(words - lo);
        let wpad = pad_words(seg);
        let aseg: [&[u64]; MAX_BITS] = seg_planes(a.planes, lo, seg);
        let bseg: [&[u64]; MAX_BITS] = seg_planes(b.planes, lo, seg);
        extract_subplanes(
            &PlanesRef {
                planes: &aseg[..a.planes.len()],
                s: a.s,
                neg_top: a.neg_top,
            },
            wpad,
            &mut abuf,
        );
        extract_subplanes(
            &PlanesRef {
                planes: &bseg[..b.planes.len()],
                s: b.s,
                neg_top: b.neg_top,
            },
            wpad,
            &mut bbuf,
        );
        total = total.wrapping_add(dot_subplanes(
            tier, &abuf, &bbuf, wpad, abits, bbits, a.neg_top, b.neg_top,
        ));
        lo += seg;
    }
    total
}

/// Re-slices each plane to the `[lo, lo + seg)` window (padding the fixed
/// array with empty slices past `planes.len()`).
fn seg_planes<'a>(planes: &[&'a [u64]], lo: usize, seg: usize) -> [&'a [u64]; MAX_BITS] {
    let mut out: [&[u64]; MAX_BITS] = [&[]; MAX_BITS];
    for (dst, plane) in out.iter_mut().zip(planes.iter()) {
        *dst = &plane[lo..lo + seg];
    }
    out
}

/// Portable reference tier — the always-correct fallback every SIMD tier
/// is pinned against.
pub(crate) mod scalar {
    use super::{subplane_mask, PlanesRef, MAX_BITS};

    /// Weighted sub-plane popcount straight from the packed planes: each
    /// word is decomposed once into its sub-planes, all bit-pair popcounts
    /// accumulate in one pass, and the ±2^(i+l) significance weights are
    /// applied once at the end (the original fused SWAR kernel).
    pub(crate) fn weighted_dot(a: &PlanesRef<'_>, b: &PlanesRef<'_>) -> i64 {
        let s = a.s as usize;
        let (abits, bbits) = (a.planes.len() * s, b.planes.len() * s);
        debug_assert!(abits <= MAX_BITS && bbits <= MAX_BITS);
        if abits == 0 || bbits == 0 {
            return 0;
        }
        // 1-bit single-plane fast path: one AND + popcount per word.
        if abits == 1 && bbits == 1 {
            let mut count = 0u64;
            for (&x, &y) in a.planes[0].iter().zip(b.planes[0]) {
                count += u64::from((x & y).count_ones());
            }
            let negate = a.neg_top != b.neg_top;
            return if negate {
                -(count as i64)
            } else {
                count as i64
            };
        }
        let mask = subplane_mask(a.s);
        let words = a.planes[0].len();
        let mut counts = [[0u64; MAX_BITS]; MAX_BITS];
        for widx in 0..words {
            let mut asub = [0u64; MAX_BITS];
            for (j, plane) in a.planes.iter().enumerate() {
                let w = plane[widx];
                for p in 0..s {
                    asub[j * s + p] = (w >> p) & mask;
                }
            }
            let mut bsub = [0u64; MAX_BITS];
            for (k, plane) in b.planes.iter().enumerate() {
                let w = plane[widx];
                for q in 0..s {
                    bsub[k * s + q] = (w >> q) & mask;
                }
            }
            for (i, &ai) in asub.iter().enumerate().take(abits) {
                let row = &mut counts[i];
                for (l, &bl) in bsub.iter().enumerate().take(bbits) {
                    row[l] += u64::from((ai & bl).count_ones());
                }
            }
        }
        reduce_counts(&counts, abits, bbits, a.neg_top, b.neg_top)
    }

    /// The padded-buffer inner kernel, scalar edition (used when the
    /// blocked GEMM is forced onto the scalar tier).
    pub(crate) fn dot_subplanes(
        asub: &[u64],
        bsub: &[u64],
        wpad: usize,
        abits: usize,
        bbits: usize,
        neg_a: bool,
        neg_b: bool,
    ) -> i64 {
        let mut counts = [[0u64; MAX_BITS]; MAX_BITS];
        for i in 0..abits {
            let arow = &asub[i * wpad..(i + 1) * wpad];
            for l in 0..bbits {
                let brow = &bsub[l * wpad..(l + 1) * wpad];
                let mut c = 0u64;
                for (&x, &y) in arow.iter().zip(brow) {
                    c += u64::from((x & y).count_ones());
                }
                counts[i][l] = c;
            }
        }
        reduce_counts(&counts, abits, bbits, neg_a, neg_b)
    }

    /// Applies the ±2^(i+l) significance weights to the popcount matrix —
    /// the top bit of a signed operand weighs negative (two's complement).
    pub(crate) fn reduce_counts(
        counts: &[[u64; MAX_BITS]; MAX_BITS],
        abits: usize,
        bbits: usize,
        neg_a: bool,
        neg_b: bool,
    ) -> i64 {
        let bit_weight = |t: usize, bits: usize, neg: bool| -> i64 {
            let w = 1i64 << t;
            if neg && t + 1 == bits {
                -w
            } else {
                w
            }
        };
        let mut total = 0i64;
        for (i, row) in counts.iter().enumerate().take(abits) {
            let wi = bit_weight(i, abits, neg_a);
            for (l, &count) in row.iter().enumerate().take(bbits) {
                if count != 0 {
                    total += wi * bit_weight(l, bbits, neg_b) * count as i64;
                }
            }
        }
        total
    }
}

/// 256-bit AVX2 tier: AND + vpshufb nibble-LUT popcount + vpsadbw lane
/// reduction, significance weights applied in-register via `vpsllq`.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::MAX_BITS;
    use std::arch::x86_64::*;

    /// Per-64-bit-lane popcount of a 256-bit vector (Mula's vpshufb
    /// nibble-LUT + vpsadbw byte reduction).
    #[inline]
    unsafe fn popcnt_epi64(v: __m256i, lut: __m256i, low_mask: __m256i) -> __m256i {
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// See [`super::dot_subplanes`]; `wpad` must be a multiple of 4.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (checked by the dispatcher at runtime).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn dot_subplanes(
        asub: &[u64],
        bsub: &[u64],
        wpad: usize,
        abits: usize,
        bbits: usize,
        neg_a: bool,
        neg_b: bool,
    ) -> i64 {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        // Shift counts for the ±2^(i+l) weights, materialized once.
        let mut shifts = [_mm_setzero_si128(); 2 * MAX_BITS - 1];
        for (t, sh) in shifts.iter_mut().enumerate() {
            *sh = _mm_cvtsi32_si128(t as i32);
        }
        let ap = asub.as_ptr();
        let bp = bsub.as_ptr();
        let mut acc = _mm256_setzero_si256();
        let mut chunk = 0usize;
        while chunk < wpad {
            let mut bv = [_mm256_setzero_si256(); MAX_BITS];
            for (l, slot) in bv.iter_mut().enumerate().take(bbits) {
                *slot = _mm256_loadu_si256(bp.add(l * wpad + chunk).cast());
            }
            for i in 0..abits {
                let av = _mm256_loadu_si256(ap.add(i * wpad + chunk).cast());
                let na = neg_a && i + 1 == abits;
                for (l, &bvl) in bv.iter().enumerate().take(bbits) {
                    let cnt = popcnt_epi64(_mm256_and_si256(av, bvl), lut, low_mask);
                    let w = _mm256_sll_epi64(cnt, shifts[i + l]);
                    if na != (neg_b && l + 1 == bbits) {
                        acc = _mm256_sub_epi64(acc, w);
                    } else {
                        acc = _mm256_add_epi64(acc, w);
                    }
                }
            }
            chunk += 4;
        }
        // Lane-wise wrapping sum is exact: the true total fits i64.
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        lanes.iter().fold(0i64, |s, &l| s.wrapping_add(l))
    }
}

/// 512-bit AVX-512 tier: native `vpopcntq` (VPOPCNTDQ) makes the bit-pair
/// popcount a single instruction per 8 words.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::MAX_BITS;
    use std::arch::x86_64::*;

    /// See [`super::dot_subplanes`]; `wpad` must be a multiple of 8.
    ///
    /// # Safety
    ///
    /// Requires AVX-512 F/BW/VL/VPOPCNTDQ (checked by the dispatcher at
    /// runtime).
    #[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vpopcntdq")]
    pub(crate) unsafe fn dot_subplanes(
        asub: &[u64],
        bsub: &[u64],
        wpad: usize,
        abits: usize,
        bbits: usize,
        neg_a: bool,
        neg_b: bool,
    ) -> i64 {
        let mut shifts = [_mm_setzero_si128(); 2 * MAX_BITS - 1];
        for (t, sh) in shifts.iter_mut().enumerate() {
            *sh = _mm_cvtsi32_si128(t as i32);
        }
        let ap = asub.as_ptr();
        let bp = bsub.as_ptr();
        // Two accumulators break the add/sub dependency chain.
        let mut acc0 = _mm512_setzero_si512();
        let mut acc1 = _mm512_setzero_si512();
        let mut chunk = 0usize;
        while chunk < wpad {
            let mut bv = [_mm512_setzero_si512(); MAX_BITS];
            for (l, slot) in bv.iter_mut().enumerate().take(bbits) {
                *slot = _mm512_loadu_si512(bp.add(l * wpad + chunk).cast());
            }
            for i in 0..abits {
                let av = _mm512_loadu_si512(ap.add(i * wpad + chunk).cast());
                let na = neg_a && i + 1 == abits;
                for (l, &bvl) in bv.iter().enumerate().take(bbits) {
                    let cnt = _mm512_popcnt_epi64(_mm512_and_si512(av, bvl));
                    let w = _mm512_sll_epi64(cnt, shifts[i + l]);
                    let neg = na != (neg_b && l + 1 == bbits);
                    if l & 1 == 0 {
                        acc0 = if neg {
                            _mm512_sub_epi64(acc0, w)
                        } else {
                            _mm512_add_epi64(acc0, w)
                        };
                    } else {
                        acc1 = if neg {
                            _mm512_sub_epi64(acc1, w)
                        } else {
                            _mm512_add_epi64(acc1, w)
                        };
                    }
                }
            }
            chunk += 8;
        }
        let acc = _mm512_add_epi64(acc0, acc1);
        // Lane-wise wrapping sum is exact: the true total fits i64.
        let mut lanes = [0i64; 8];
        _mm512_storeu_si512(lanes.as_mut_ptr().cast(), acc);
        lanes.iter().fold(0i64, |s, &l| s.wrapping_add(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_and_names() {
        assert!(KernelTier::Scalar < KernelTier::Avx2);
        assert!(KernelTier::Avx2 < KernelTier::Avx512);
        assert_eq!(KernelTier::Avx512.name(), "avx512");
        assert_eq!(KernelTier::Scalar.to_string(), "scalar");
    }

    #[test]
    fn available_tiers_start_scalar_and_are_sorted() {
        let tiers = available_tiers();
        assert_eq!(tiers[0], KernelTier::Scalar);
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*tiers.last().unwrap(), detected_tier());
    }

    #[test]
    fn active_tier_is_available() {
        assert!(available_tiers().contains(&active_tier()));
    }

    #[test]
    fn pad_words_rounds_to_widest_lane() {
        assert_eq!(pad_words(0), 0);
        assert_eq!(pad_words(1), 8);
        assert_eq!(pad_words(8), 8);
        assert_eq!(pad_words(9), 16);
    }

    /// Every available tier agrees with the scalar tier on the padded
    /// inner kernel across chunk-boundary word counts and sign flags.
    #[test]
    fn dot_subplanes_tiers_agree_across_boundaries() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for words in [0usize, 1, 3, 4, 5, 7, 8, 9, 12, 16, 17, 63, 64, 65] {
            let wpad = pad_words(words);
            for (abits, bbits) in [(1usize, 1usize), (2, 2), (8, 8), (8, 2), (3, 5)] {
                let mut asub = vec![0u64; abits * wpad];
                let mut bsub = vec![0u64; bbits * wpad];
                for row in 0..abits {
                    for w in 0..words {
                        asub[row * wpad + w] = next();
                    }
                }
                for row in 0..bbits {
                    for w in 0..words {
                        bsub[row * wpad + w] = next();
                    }
                }
                for neg_a in [false, true] {
                    for neg_b in [false, true] {
                        let want =
                            scalar::dot_subplanes(&asub, &bsub, wpad, abits, bbits, neg_a, neg_b);
                        for tier in available_tiers() {
                            let got =
                                dot_subplanes(tier, &asub, &bsub, wpad, abits, bbits, neg_a, neg_b);
                            assert_eq!(
                                got, want,
                                "{tier} words={words} abits={abits} bbits={bbits} \
                                 neg=({neg_a},{neg_b})"
                            );
                        }
                    }
                }
            }
        }
    }
}
