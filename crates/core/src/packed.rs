//! Packed bit-plane operand layout — the software realization of slice
//! clustering (paper §II, Equation 4) at word-level speed.
//!
//! [`crate::bitslice`] models the slicing algebra one scalar at a time: a
//! `Vec<Slice>` per value, a re-materialized sub-vector per significance.
//! That is the right shape for *proving* the algebra, and hopeless for
//! *executing* it at Table I scale. This module stores the same
//! decomposition the way the hardware conceptually does: all slices of
//! equal significance `k`, across the whole vector, live in one contiguous
//! **plane** of `s`-bit fields packed into `u64` words. Equation 4's inner
//! narrow dot-product `Σᵢ xᵢ[αj..] · wᵢ[βk..]` then becomes a streaming
//! word kernel ([`crate::nbve::slice_dot_words`]): a single AND + popcount
//! per word for 1-bit slices, and a SWAR sub-plane popcount accumulation
//! for 2/4/8-bit slices — no per-element allocation, branching or shifting.
//!
//! The layout is exact: packing validates every element against its
//! declared width, planes reproduce [`crate::bitslice::SlicedValue`]'s
//! two's-complement slice fields bit for bit (the top plane of a signed
//! operand carries the sign), and [`PackedSliceMatrix::dot`] equals
//! [`crate::dotprod::dot_exact`] for all in-range inputs — property tests
//! in `tests/packed_properties.rs` pin this for every width × slicing ×
//! signedness combination.

use serde::{Deserialize, Serialize};

use crate::bitslice::{BitWidth, Signedness, SliceWidth};
use crate::error::CoreError;
use crate::kernels::{self, KernelTier, PlanesRef};
use crate::nbve::slice_dot_words;

/// A batch of equal-length vectors decomposed once into packed slice planes.
///
/// Conceptually a `[num_vecs, len]` matrix of `width`-bit values, stored as
/// `ceil(width / slice)` planes: plane `j` holds the `j`-th (significance
/// `2^(s·j)`) slice of every element, as `s`-bit fields packed
/// little-endian into `u64` words, one padded word run per vector. Tail
/// fields beyond `len` are zero, so they contribute nothing to any dot
/// product.
///
/// ```
/// use bpvec_core::{BitWidth, PackedSliceMatrix, Signedness, SliceWidth};
/// let xs = [-77i32, 5, 127, -128];
/// let ws = [33i32, -2, -128, 127];
/// let px = PackedSliceMatrix::pack(&xs, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)?;
/// let pw = PackedSliceMatrix::pack(&ws, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)?;
/// let exact: i64 = xs.iter().zip(&ws).map(|(&x, &w)| (x as i64) * (w as i64)).sum();
/// assert_eq!(px.dot(0, &pw, 0), exact);
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedSliceMatrix {
    /// `planes[j]` holds vector `i`'s words at
    /// `[i * words_per_vec .. (i + 1) * words_per_vec]`.
    planes: Vec<Vec<u64>>,
    num_vecs: usize,
    len: usize,
    words_per_vec: usize,
    width: BitWidth,
    slice_width: SliceWidth,
    signedness: Signedness,
}

impl PackedSliceMatrix {
    /// Packs `num_vecs` row-major vectors of `len` elements each.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueOutOfRange`] on the first element that does
    /// not fit the declared `width`/`signedness`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != num_vecs * len` (a programming error, not a
    /// runtime condition).
    pub fn pack_rows(
        data: &[i32],
        num_vecs: usize,
        len: usize,
        width: BitWidth,
        slice_width: SliceWidth,
        signedness: Signedness,
    ) -> Result<Self, CoreError> {
        assert_eq!(
            data.len(),
            num_vecs * len,
            "packed data length {} does not match {num_vecs} vectors of {len}",
            data.len()
        );
        Self::pack_from_fn(num_vecs, len, width, slice_width, signedness, |v, e| {
            data[v * len + e]
        })
    }

    /// Packs a single vector (a `1 × len` matrix).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PackedSliceMatrix::pack_rows`].
    pub fn pack(
        values: &[i32],
        width: BitWidth,
        slice_width: SliceWidth,
        signedness: Signedness,
    ) -> Result<Self, CoreError> {
        Self::pack_rows(values, 1, values.len(), width, slice_width, signedness)
    }

    /// Packs `num_vecs` vectors of `len` elements, reading element `e` of
    /// vector `v` from `f(v, e)` — the gather-free entry point for packing
    /// matrix columns or im2col patches without materializing a transpose.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueOutOfRange`] on the first element that does
    /// not fit the declared `width`/`signedness`.
    pub fn pack_from_fn(
        num_vecs: usize,
        len: usize,
        width: BitWidth,
        slice_width: SliceWidth,
        signedness: Signedness,
        mut f: impl FnMut(usize, usize) -> i32,
    ) -> Result<Self, CoreError> {
        let s = slice_width.bits();
        let n_slices = slice_width.slices_for(width) as usize;
        let fields_per_word = (64 / s) as usize;
        let words_per_vec = len.div_ceil(fields_per_word);
        let total_bits = n_slices as u32 * s;
        let pattern_mask = if total_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << total_bits) - 1
        };
        let field_mask = (1u32 << s) - 1;
        let mut planes = vec![vec![0u64; num_vecs * words_per_vec]; n_slices];
        for v in 0..num_vecs {
            for e in 0..len {
                let value = f(v, e);
                width.check(value, signedness)?;
                // The same padded two's-complement pattern SlicedValue
                // decomposes: slice j is bits [j*s, (j+1)*s).
                let pattern = (value as u32) & pattern_mask;
                let word = v * words_per_vec + e / fields_per_word;
                let offset = ((e % fields_per_word) as u32) * s;
                for (j, plane) in planes.iter_mut().enumerate() {
                    let field = (pattern >> (j as u32 * s)) & field_mask;
                    plane[word] |= u64::from(field) << offset;
                }
            }
        }
        Ok(PackedSliceMatrix {
            planes,
            num_vecs,
            len,
            words_per_vec,
            width,
            slice_width,
            signedness,
        })
    }

    /// Number of packed vectors.
    #[must_use]
    pub fn num_vecs(&self) -> usize {
        self.num_vecs
    }

    /// Elements per vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vectors have no elements (or there are no vectors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0 || self.num_vecs == 0
    }

    /// The declared operand width.
    #[must_use]
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// The slice width of the packed fields.
    #[must_use]
    pub fn slice_width(&self) -> SliceWidth {
        self.slice_width
    }

    /// The declared signedness.
    #[must_use]
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }

    /// Number of slice planes (`ceil(width / slice)`).
    #[must_use]
    pub fn n_slices(&self) -> usize {
        self.planes.len()
    }

    /// `u64` words per vector per plane.
    #[must_use]
    pub fn words_per_vec(&self) -> usize {
        self.words_per_vec
    }

    /// Packed footprint in bytes over all planes — what a scratchpad holding
    /// the operand in this layout would store.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.planes.len() * self.num_vecs * self.words_per_vec * 8
    }

    /// The packed words of vector `vec`'s slice plane `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice >= n_slices()` or `vec >= num_vecs()`.
    #[must_use]
    pub fn plane(&self, slice: usize, vec: usize) -> &[u64] {
        assert!(vec < self.num_vecs, "vector {vec} out of range");
        let lo = vec * self.words_per_vec;
        &self.planes[slice][lo..lo + self.words_per_vec]
    }

    /// True if plane `slice` carries the sign (the most-significant slice of
    /// a signed operand) — the only plane whose fields a kernel must weight
    /// as two's complement.
    #[must_use]
    pub fn signed_top(&self, slice: usize) -> bool {
        self.signedness == Signedness::Signed && slice + 1 == self.planes.len()
    }

    /// The narrow dot-product of one slice plane of `self[vec]` against one
    /// slice plane of `other[ovec]` — what a single NBVE computes, via the
    /// word kernel.
    ///
    /// # Panics
    ///
    /// Panics on plane/vector indices out of range, or if the two matrices
    /// disagree in length or slice width (see [`PackedSliceMatrix::dot`]).
    #[must_use]
    pub fn slice_dot(
        &self,
        vec: usize,
        slice: usize,
        other: &PackedSliceMatrix,
        ovec: usize,
        oslice: usize,
    ) -> i64 {
        self.check_compatible(other);
        slice_dot_words(
            self.plane(slice, vec),
            other.plane(oslice, ovec),
            self.slice_width,
            self.signed_top(slice),
            other.signed_top(oslice),
        )
    }

    /// The full Equation 4 dot-product of vector `vec` against `other`'s
    /// vector `ovec`: every (j, k) slice-plane pair reduced through the
    /// word-level kernels, shift-added by significance. Exactly equals
    /// [`crate::dotprod::dot_exact`] of the original vectors.
    ///
    /// The hot loop is a *fused* form of the per-pair kernel
    /// ([`slice_dot_words`], still exposed through
    /// [`PackedSliceMatrix::slice_dot`]): since the sub-plane split of an
    /// `s`-bit slice plane is just the 1-bit planes of the original value,
    /// each word is decomposed once into its ≤ 8 bit planes per operand and
    /// all bit-pair popcounts accumulate in one pass — every plane pair's
    /// extraction and significance multiply is hoisted out of the word
    /// stream, with the weighted reduction `Σᵢₗ ±2^(i+l)·countᵢₗ` applied
    /// once per dot (the top bit of a signed operand weighs negative: two's
    /// complement).
    ///
    /// The realization is dispatched once per process by
    /// [`crate::kernels::active_tier`]: AVX-512 `vpopcntq` or AVX2
    /// vpshufb-popcount lanes where available, portable scalar SWAR
    /// otherwise or under `BPVEC_KERNEL=scalar` — all tiers bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the matrices disagree in element count or slice width
    /// (operands must be packed for the same hardware slicing), or on
    /// vector indices out of range.
    #[must_use]
    pub fn dot(&self, vec: usize, other: &PackedSliceMatrix, ovec: usize) -> i64 {
        self.dot_with(kernels::active_tier(), vec, other, ovec)
    }

    /// [`PackedSliceMatrix::dot`] through an explicit kernel tier — the
    /// entry point dispatch-equality tests and benches use to pin every
    /// available tier against the scalar reference on the same operands.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PackedSliceMatrix::dot`], plus if `tier` is not
    /// available on this CPU (see [`crate::kernels::available_tiers`]).
    #[must_use]
    pub fn dot_with(
        &self,
        tier: KernelTier,
        vec: usize,
        other: &PackedSliceMatrix,
        ovec: usize,
    ) -> i64 {
        self.check_compatible(other);
        assert!(vec < self.num_vecs, "vector {vec} out of range");
        assert!(ovec < other.num_vecs, "vector {ovec} out of range");
        assert!(
            tier <= kernels::detected_tier(),
            "kernel tier {tier} is not available on this CPU"
        );
        let (a_planes, a_ref) = self.planes_ref(vec);
        let (b_planes, b_ref) = other.planes_ref(ovec);
        kernels::weighted_dot(
            tier,
            &PlanesRef {
                planes: &a_planes[..self.planes.len()],
                ..a_ref
            },
            &PlanesRef {
                planes: &b_planes[..other.planes.len()],
                ..b_ref
            },
        )
    }

    /// Collects vector `vec`'s plane slices into a fixed array plus the
    /// kernel-facing descriptor (with an empty placeholder `planes` field —
    /// callers re-borrow the array at the right length).
    fn planes_ref(&self, vec: usize) -> ([&[u64]; 8], PlanesRef<'_>) {
        debug_assert!(self.planes.len() <= 8, "operands wider than 8 bits");
        let mut arr: [&[u64]; 8] = [&[]; 8];
        for (slot, j) in arr.iter_mut().zip(0..self.planes.len()) {
            *slot = self.plane(j, vec);
        }
        (
            arr,
            PlanesRef {
                planes: &[],
                s: self.slice_width.bits(),
                neg_top: self.signedness == Signedness::Signed,
            },
        )
    }

    /// Computes the dense dot-product block of rows `rows` of `self`
    /// against **every** vector of `other`, writing
    /// `out[r * other.num_vecs() + c] = self.dot(rows.start + r, other, c)`.
    ///
    /// This is the cache-blocked building block of the packed GEMM: `other`
    /// (the stationary operand) is decomposed into one-bit sub-plane panels
    /// sized for L1, each row of `self` is decomposed once per panel, and
    /// the inner kernel then streams zero-padded, SIMD-aligned buffers with
    /// no per-dot extraction work — on SIMD tiers this amortizes the slice
    /// split across a whole panel of outputs. Results are bit-identical to
    /// calling [`PackedSliceMatrix::dot`] per element on every tier.
    ///
    /// # Panics
    ///
    /// Panics if the matrices disagree in element count or slice width, if
    /// `rows` is out of range, if `out.len() != rows.len() *
    /// other.num_vecs()`, or if `tier` is not available on this CPU.
    pub fn dot_block_into(
        &self,
        tier: KernelTier,
        rows: core::ops::Range<usize>,
        other: &PackedSliceMatrix,
        out: &mut [i64],
    ) {
        self.check_compatible(other);
        assert!(
            rows.end <= self.num_vecs,
            "row range {rows:?} out of range ({} vectors)",
            self.num_vecs
        );
        assert!(
            tier <= kernels::detected_tier(),
            "kernel tier {tier} is not available on this CPU"
        );
        let n = other.num_vecs;
        assert_eq!(
            out.len(),
            rows.len() * n,
            "output block must hold rows × columns results"
        );
        if tier == KernelTier::Scalar {
            // The scalar tier keeps the original per-dot fused loop: same
            // operation count either way, and it keeps the fallback path
            // byte-for-byte the pre-SIMD behavior.
            for (ri, row) in rows.clone().enumerate() {
                for col in 0..n {
                    out[ri * n + col] = self.dot_with(tier, row, other, col);
                }
            }
            return;
        }
        let s = self.slice_width.bits() as usize;
        let (abits, bbits) = (self.planes.len() * s, other.planes.len() * s);
        let wpv = self.words_per_vec;
        if abits == 0 || bbits == 0 || wpv == 0 || n == 0 || rows.is_empty() {
            out.fill(0);
            return;
        }
        let wpad = kernels::pad_words(wpv);
        let (neg_a, neg_b) = (
            self.signedness == Signedness::Signed,
            other.signedness == Signedness::Signed,
        );
        let panel = kernels::col_panel_len(bbits, wpad).min(n);
        let col_stride = bbits * wpad;
        let mut bbuf = vec![0u64; panel * col_stride];
        let mut abuf = vec![0u64; abits * wpad];
        let mut c0 = 0usize;
        while c0 < n {
            let pc = panel.min(n - c0);
            for ci in 0..pc {
                let (b_planes, b_ref) = other.planes_ref(c0 + ci);
                kernels::extract_subplanes(
                    &PlanesRef {
                        planes: &b_planes[..other.planes.len()],
                        ..b_ref
                    },
                    wpad,
                    &mut bbuf[ci * col_stride..(ci + 1) * col_stride],
                );
            }
            for (ri, row) in rows.clone().enumerate() {
                let (a_planes, a_ref) = self.planes_ref(row);
                kernels::extract_subplanes(
                    &PlanesRef {
                        planes: &a_planes[..self.planes.len()],
                        ..a_ref
                    },
                    wpad,
                    &mut abuf,
                );
                for ci in 0..pc {
                    out[ri * n + c0 + ci] = kernels::dot_subplanes(
                        tier,
                        &abuf,
                        &bbuf[ci * col_stride..(ci + 1) * col_stride],
                        wpad,
                        abits,
                        bbits,
                        neg_a,
                        neg_b,
                    );
                }
            }
            c0 += pc;
        }
    }

    fn check_compatible(&self, other: &PackedSliceMatrix) {
        assert_eq!(
            self.len, other.len,
            "packed operands differ in length: {} vs {}",
            self.len, other.len
        );
        assert_eq!(
            self.slice_width, other.slice_width,
            "packed operands differ in slice width: {} vs {}",
            self.slice_width, other.slice_width
        );
    }

    /// Unpacks element `e` of vector `vec` back to its original value — the
    /// slices recombined by significance, sign-extended from the top plane.
    /// Exact inverse of packing; used by round-trip tests.
    ///
    /// # Panics
    ///
    /// Panics if `vec`/`e` are out of range.
    #[must_use]
    pub fn get(&self, vec: usize, e: usize) -> i32 {
        assert!(e < self.len, "element {e} out of range (len {})", self.len);
        let s = self.slice_width.bits();
        let fields_per_word = (64 / s) as usize;
        let word = vec * self.words_per_vec + e / fields_per_word;
        let offset = ((e % fields_per_word) as u32) * s;
        let field_mask = (1u64 << s) - 1;
        let mut value = 0i64;
        for (j, plane) in self.planes.iter().enumerate() {
            let raw = (plane[word] >> offset) & field_mask;
            let field = if self.signed_top(j) && raw & (1 << (s - 1)) != 0 {
                raw as i64 - (1i64 << s)
            } else {
                raw as i64
            };
            value += field << (j as u32 * s);
        }
        value as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitslice::{decompose_vector, subvector};
    use crate::dotprod::dot_exact;

    #[test]
    fn pack_roundtrips_signed_int8_edges() {
        let vals = [-128, 127, -1, 0, 1, -77, 100];
        for sw in [
            SliceWidth::BIT1,
            SliceWidth::BIT2,
            SliceWidth::BIT4,
            SliceWidth::BIT8,
        ] {
            let p = PackedSliceMatrix::pack(&vals, BitWidth::INT8, sw, Signedness::Signed).unwrap();
            for (e, &v) in vals.iter().enumerate() {
                assert_eq!(p.get(0, e), v, "{sw} element {e}");
            }
        }
    }

    #[test]
    fn planes_match_scalar_decomposition() {
        let vals = [-128, 127, -1, 0, 5, -3];
        let sliced =
            decompose_vector(&vals, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed).unwrap();
        let p =
            PackedSliceMatrix::pack(&vals, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)
                .unwrap();
        assert_eq!(p.n_slices(), 4);
        for j in 0..4 {
            let lane = subvector(&sliced, j);
            for (e, &want) in lane.iter().enumerate() {
                // Raw packed field == unsigned slice value; the top plane's
                // field is the two's-complement form of the signed slice.
                let s = 2u32;
                let field = (p.plane(j, 0)[e / 32] >> ((e % 32) as u32 * s)) & ((1 << s) - 1);
                let got = if p.signed_top(j) && field & 0b10 != 0 {
                    field as i64 - 4
                } else {
                    field as i64
                };
                assert_eq!(got, i64::from(want), "plane {j} element {e}");
            }
        }
    }

    #[test]
    fn dot_matches_exact_for_fixture() {
        let xs = [-128, 127, -1, 0, 64, -64, 3, -3];
        let ws = [127, -128, -1, -1, 3, -3, 100, 99];
        let exact = dot_exact(&xs, &ws).unwrap();
        for sw in [
            SliceWidth::BIT1,
            SliceWidth::BIT2,
            SliceWidth::BIT4,
            SliceWidth::BIT8,
        ] {
            let px = PackedSliceMatrix::pack(&xs, BitWidth::INT8, sw, Signedness::Signed).unwrap();
            let pw = PackedSliceMatrix::pack(&ws, BitWidth::INT8, sw, Signedness::Signed).unwrap();
            assert_eq!(px.dot(0, &pw, 0), exact, "{sw}");
        }
    }

    #[test]
    fn mixed_widths_pack_independently() {
        // 8-bit activations against 2-bit weights (paper Figure 3c).
        let xs = [-100, 77, 0, -1, 127, -128];
        let ws = [1, -2, 0, 1, -1, -2];
        let px = PackedSliceMatrix::pack(&xs, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)
            .unwrap();
        let pw = PackedSliceMatrix::pack(&ws, BitWidth::INT2, SliceWidth::BIT2, Signedness::Signed)
            .unwrap();
        assert_eq!(px.n_slices(), 4);
        assert_eq!(pw.n_slices(), 1);
        assert_eq!(px.dot(0, &pw, 0), dot_exact(&xs, &ws).unwrap());
    }

    #[test]
    fn unsigned_operands_have_no_signed_plane() {
        let xs = [255, 0, 128, 17];
        let p =
            PackedSliceMatrix::pack(&xs, BitWidth::INT8, SliceWidth::BIT4, Signedness::Unsigned)
                .unwrap();
        assert!(!p.signed_top(p.n_slices() - 1));
        let q =
            PackedSliceMatrix::pack(&xs, BitWidth::INT8, SliceWidth::BIT4, Signedness::Unsigned)
                .unwrap();
        assert_eq!(p.dot(0, &q, 0), dot_exact(&xs, &xs).unwrap());
    }

    #[test]
    fn tail_padding_is_inert() {
        // Lengths straddling word boundaries: 2-bit slices -> 32 fields/word.
        for n in [1usize, 31, 32, 33, 63, 64, 65] {
            let xs: Vec<i32> = (0..n).map(|i| (i as i32 % 255) - 127).collect();
            let ws: Vec<i32> = (0..n).map(|i| ((i as i32 * 7) % 255) - 127).collect();
            let px =
                PackedSliceMatrix::pack(&xs, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)
                    .unwrap();
            let pw =
                PackedSliceMatrix::pack(&ws, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)
                    .unwrap();
            assert_eq!(px.dot(0, &pw, 0), dot_exact(&xs, &ws).unwrap(), "n = {n}");
        }
    }

    #[test]
    fn multi_vector_rows_pack_and_dot_independently() {
        let data: Vec<i32> = (0..24).map(|i| (i * 11 % 255) - 127).collect();
        let m = PackedSliceMatrix::pack_rows(
            &data,
            4,
            6,
            BitWidth::INT8,
            SliceWidth::BIT2,
            Signedness::Signed,
        )
        .unwrap();
        assert_eq!(m.num_vecs(), 4);
        for i in 0..4 {
            for j in 0..4 {
                let a = &data[i * 6..(i + 1) * 6];
                let b = &data[j * 6..(j + 1) * 6];
                assert_eq!(m.dot(i, &m, j), dot_exact(a, b).unwrap());
            }
        }
    }

    #[test]
    fn empty_vectors_dot_to_zero() {
        let p = PackedSliceMatrix::pack(&[], BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)
            .unwrap();
        assert!(p.is_empty());
        assert_eq!(p.words_per_vec(), 0);
        assert_eq!(p.dot(0, &p, 0), 0);
    }

    #[test]
    fn out_of_range_value_is_rejected() {
        assert!(matches!(
            PackedSliceMatrix::pack(&[128], BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed),
            Err(CoreError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            PackedSliceMatrix::pack(
                &[-1],
                BitWidth::INT4,
                SliceWidth::BIT2,
                Signedness::Unsigned
            ),
            Err(CoreError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "differ in slice width")]
    fn mismatched_slice_widths_panic() {
        let a = PackedSliceMatrix::pack(&[1], BitWidth::INT4, SliceWidth::BIT2, Signedness::Signed)
            .unwrap();
        let b = PackedSliceMatrix::pack(&[1], BitWidth::INT4, SliceWidth::BIT1, Signedness::Signed)
            .unwrap();
        let _ = a.dot(0, &b, 0);
    }

    #[test]
    fn byte_len_counts_all_planes() {
        let p = PackedSliceMatrix::pack_rows(
            &[0i32; 64],
            2,
            32,
            BitWidth::INT4,
            SliceWidth::BIT2,
            Signedness::Signed,
        )
        .unwrap();
        // 2 planes x 2 vectors x 1 word (32 2-bit fields) x 8 bytes.
        assert_eq!(p.byte_len(), 2 * 2 * 8);
    }
}
