//! Temporal (bit-serial) composability — the other axis of the paper's
//! Figure 1 taxonomy.
//!
//! Stripes \[10\], Loom \[18\] and UNPU \[11\] exploit reduced bitwidths
//! *temporally*: activations stream one bit per cycle through bit-parallel
//! weight lanes, so an `L`-lane engine completes an `L`-element dot-product
//! in `bwx` cycles (Stripes) or `bwx·bww` cycles when both operands
//! serialize (Loom). The paper positions BPVeC against this style
//! ("the data-level parallelism compensates for bit-serial individual
//! operations", §V), so this module provides a bit-true model of both
//! variants for ablation studies.

use serde::{Deserialize, Serialize};

use crate::bitslice::{decompose_vector, subvector, BitWidth, Signedness, SliceWidth};
use crate::error::CoreError;

/// Which operands are serialized over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SerialMode {
    /// Stripes-style: activations bit-serial, weights bit-parallel —
    /// `bwx` cycles per `L`-chunk.
    ActivationSerial,
    /// Loom-style: both operands bit-serial — `bwx·bww` cycles per chunk.
    FullySerial,
}

/// A bit-serial vector engine: `lanes` single-bit (or bit×word) multipliers
/// that complete one narrow partial product per cycle and accumulate
/// shifted partial sums over time.
///
/// ```
/// use bpvec_core::bitserial::{BitSerialEngine, SerialMode};
/// use bpvec_core::{BitWidth, Signedness};
/// let eng = BitSerialEngine::new(16, SerialMode::ActivationSerial);
/// let out = eng.dot(&[3, -2, 1], &[1, 2, 3],
///                   BitWidth::INT4, BitWidth::INT4, Signedness::Signed)?;
/// assert_eq!(out.value, 3 - 4 + 3);
/// assert_eq!(out.cycles, 4); // one chunk x 4 activation bits
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSerialEngine {
    lanes: usize,
    mode: SerialMode,
}

/// Result of a bit-serial dot-product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSerialOutput {
    /// The exact dot-product value.
    pub value: i64,
    /// Cycles consumed (temporal cost of the serialization).
    pub cycles: u64,
}

impl BitSerialEngine {
    /// Creates an engine with `lanes` parallel lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    #[must_use]
    pub fn new(lanes: usize, mode: SerialMode) -> Self {
        assert!(lanes > 0, "a bit-serial engine needs at least one lane");
        BitSerialEngine { lanes, mode }
    }

    /// The number of parallel lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The serialization mode.
    #[must_use]
    pub fn mode(&self) -> SerialMode {
        self.mode
    }

    /// Cycles needed for an `n`-element dot-product at the given bitwidths.
    #[must_use]
    pub fn cycles_for(&self, n: usize, bwx: BitWidth, bww: BitWidth) -> u64 {
        let chunks = n.div_ceil(self.lanes) as u64;
        let per_chunk = match self.mode {
            SerialMode::ActivationSerial => u64::from(bwx.bits()),
            SerialMode::FullySerial => u64::from(bwx.bits()) * u64::from(bww.bits()),
        };
        chunks * per_chunk
    }

    /// Computes the dot-product bit-serially, cycle-by-cycle.
    ///
    /// Each cycle processes one activation bit-plane (and, in
    /// [`SerialMode::FullySerial`], one weight bit-plane) across the lanes,
    /// shifting the running accumulator — exactly the Stripes/Loom datapath.
    ///
    /// # Errors
    ///
    /// * [`CoreError::LengthMismatch`] — operand vectors differ in length.
    /// * [`CoreError::ValueOutOfRange`] — an element exceeds its bitwidth.
    pub fn dot(
        &self,
        xs: &[i32],
        ws: &[i32],
        bwx: BitWidth,
        bww: BitWidth,
        signedness: Signedness,
    ) -> Result<BitSerialOutput, CoreError> {
        if xs.len() != ws.len() {
            return Err(CoreError::LengthMismatch {
                left: xs.len(),
                right: ws.len(),
            });
        }
        let mut value = 0i64;
        let mut cycles = 0u64;
        for (xc, wc) in xs.chunks(self.lanes).zip(ws.chunks(self.lanes)) {
            let xsl = decompose_vector(xc, bwx, SliceWidth::BIT1, signedness)?;
            match self.mode {
                SerialMode::ActivationSerial => {
                    // One cycle per activation bit-plane; the weight side is
                    // a full-width multiply-free AND/add array.
                    for j in 0..bwx.bits() as usize {
                        let plane = subvector(&xsl, j);
                        // Validate weights at their declared width once per
                        // chunk (cheap, first plane only).
                        if j == 0 {
                            for &w in wc {
                                bww.check(w, signedness)?;
                            }
                        }
                        let partial: i64 = plane
                            .iter()
                            .zip(wc)
                            .map(|(&b, &w)| (b as i64) * (w as i64))
                            .sum();
                        value += partial << (j as u32);
                        cycles += 1;
                    }
                }
                SerialMode::FullySerial => {
                    let wsl = decompose_vector(wc, bww, SliceWidth::BIT1, signedness)?;
                    for j in 0..bwx.bits() as usize {
                        let xplane = subvector(&xsl, j);
                        for k in 0..bww.bits() as usize {
                            let wplane = subvector(&wsl, k);
                            let partial: i64 = xplane
                                .iter()
                                .zip(&wplane)
                                .map(|(&a, &b)| (a as i64) * (b as i64))
                                .sum();
                            value += partial << (j as u32 + k as u32);
                            cycles += 1;
                        }
                    }
                }
            }
        }
        Ok(BitSerialOutput { value, cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dotprod::dot_exact;
    use proptest::prelude::*;

    #[test]
    fn activation_serial_matches_exact() {
        let eng = BitSerialEngine::new(4, SerialMode::ActivationSerial);
        let xs = [-128, 127, 3, -7, 55];
        let ws = [1, -2, 100, -100, 13];
        let out = eng
            .dot(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
        // 2 chunks x 8 bit-planes.
        assert_eq!(out.cycles, 16);
    }

    #[test]
    fn fully_serial_matches_exact_and_costs_product_of_widths() {
        let eng = BitSerialEngine::new(8, SerialMode::FullySerial);
        let xs: Vec<i32> = (0..8).map(|i| i - 4).collect();
        let ws: Vec<i32> = (0..8).map(|i| 3 - i).collect();
        let out = eng
            .dot(&xs, &ws, BitWidth::INT4, BitWidth::INT4, Signedness::Signed)
            .unwrap();
        assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
        assert_eq!(out.cycles, 16); // 1 chunk x 4 x 4
    }

    #[test]
    fn reduced_activation_width_cuts_cycles_linearly() {
        let eng = BitSerialEngine::new(16, SerialMode::ActivationSerial);
        assert_eq!(eng.cycles_for(64, BitWidth::INT8, BitWidth::INT8), 32);
        assert_eq!(eng.cycles_for(64, BitWidth::INT4, BitWidth::INT8), 16);
        assert_eq!(eng.cycles_for(64, BitWidth::INT2, BitWidth::INT8), 8);
    }

    #[test]
    fn weight_width_only_matters_when_fully_serial() {
        let a = BitSerialEngine::new(16, SerialMode::ActivationSerial);
        let f = BitSerialEngine::new(16, SerialMode::FullySerial);
        assert_eq!(
            a.cycles_for(16, BitWidth::INT8, BitWidth::INT2),
            a.cycles_for(16, BitWidth::INT8, BitWidth::INT8)
        );
        assert!(
            f.cycles_for(16, BitWidth::INT8, BitWidth::INT2)
                < f.cycles_for(16, BitWidth::INT8, BitWidth::INT8)
        );
    }

    #[test]
    fn out_of_range_weight_is_rejected() {
        let eng = BitSerialEngine::new(4, SerialMode::ActivationSerial);
        assert!(matches!(
            eng.dot(
                &[1],
                &[9],
                BitWidth::INT8,
                BitWidth::INT4,
                Signedness::Signed
            ),
            Err(CoreError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let _ = BitSerialEngine::new(0, SerialMode::ActivationSerial);
    }

    proptest! {
        /// Both serial modes are bit-true against the exact dot product for
        /// all bitwidths, signedness and lengths.
        #[test]
        fn bitserial_is_bit_true(
            mode in prop_oneof![
                Just(SerialMode::ActivationSerial),
                Just(SerialMode::FullySerial)
            ],
            lanes in 1usize..=32,
            bx in 1u32..=8,
            bw in 1u32..=8,
            signed in proptest::bool::ANY,
            seed in proptest::num::u64::ANY,
        ) {
            use rand::{Rng, SeedableRng};
            let signedness = if signed { Signedness::Signed } else { Signedness::Unsigned };
            let bwx = BitWidth::new(bx).unwrap();
            let bww = BitWidth::new(bw).unwrap();
            let (xlo, xhi) = bwx.range(signedness);
            let (wlo, whi) = bww.range(signedness);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(0..80);
            let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(xlo..=xhi)).collect();
            let ws: Vec<i32> = (0..n).map(|_| rng.gen_range(wlo..=whi)).collect();
            let eng = BitSerialEngine::new(lanes, mode);
            let out = eng.dot(&xs, &ws, bwx, bww, signedness).unwrap();
            prop_assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
            prop_assert_eq!(out.cycles, eng.cycles_for(n, bwx, bww));
        }
    }
}
