//! Composition calculus: how a CVU's NBVEs are grouped at runtime.
//!
//! Given the CVU geometry and the layer's operand bitwidths `(bx, bw)`, the
//! composition determines (paper §III-A):
//!
//! * how many NBVEs form one **cluster** — one NBVE per
//!   (x-slice, w-slice) significance pair, `ceil(bx/s) · ceil(bw/s)` total;
//! * how many clusters operate **in parallel** — the throughput multiplier of
//!   the heterogeneous quantized mode;
//! * which **shift** each NBVE's output receives before the two-level
//!   aggregation (private shift-add inside the cluster, global add across
//!   clusters' contributions to different output scalars).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::bitslice::{BitWidth, SliceWidth};
use crate::error::CoreError;

/// A runtime grouping of a CVU's NBVEs for operand bitwidths `(bx, bw)`.
///
/// ```
/// use bpvec_core::{BitWidth, Composition, SliceWidth};
/// // Paper Figure 3c: 8-bit inputs x 2-bit weights on 16 NBVEs.
/// let c = Composition::plan(16, SliceWidth::BIT2, BitWidth::INT8, BitWidth::INT2)?;
/// assert_eq!(c.nbves_per_cluster(), 4);
/// assert_eq!(c.clusters(), 4);
/// assert_eq!(c.throughput_multiplier(), 4);
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Composition {
    slice_width: SliceWidth,
    bwx: BitWidth,
    bww: BitWidth,
    x_slices: u32,
    w_slices: u32,
    clusters: usize,
    idle_nbves: usize,
}

impl Composition {
    /// Plans a composition of `total_nbves` engines with `slice_width`
    /// multipliers for operands of widths `bwx` × `bww`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CompositionTooLarge`] if a single cluster would
    /// need more NBVEs than the CVU has (i.e. the operands are too wide for
    /// this CVU geometry).
    pub fn plan(
        total_nbves: usize,
        slice_width: SliceWidth,
        bwx: BitWidth,
        bww: BitWidth,
    ) -> Result<Self, CoreError> {
        let x_slices = slice_width.slices_for(bwx);
        let w_slices = slice_width.slices_for(bww);
        let per_cluster = (x_slices * w_slices) as usize;
        if per_cluster > total_nbves {
            return Err(CoreError::CompositionTooLarge {
                required: per_cluster,
                available: total_nbves,
            });
        }
        let clusters = total_nbves / per_cluster;
        let idle_nbves = total_nbves - clusters * per_cluster;
        Ok(Composition {
            slice_width,
            bwx,
            bww,
            x_slices,
            w_slices,
            clusters,
            idle_nbves,
        })
    }

    /// [`Composition::plan`] through a process-wide memo keyed by
    /// `(total_nbves, slice_width, bwx, bww)`.
    ///
    /// Planning is pure, and the key domain is tiny (NBVE counts × four
    /// slice widths × 8×8 operand widths), so repeated planning on a hot
    /// path — every dot-product issue, every cost-model layer — collapses
    /// to a hash lookup. Errors are not cached; the invalid-geometry check
    /// is cheaper than the map probe.
    ///
    /// # Errors
    ///
    /// Exactly [`Composition::plan`]'s: [`CoreError::CompositionTooLarge`]
    /// when a single cluster would need more NBVEs than the CVU has.
    pub fn plan_cached(
        total_nbves: usize,
        slice_width: SliceWidth,
        bwx: BitWidth,
        bww: BitWidth,
    ) -> Result<Self, CoreError> {
        type PlanKey = (usize, u32, u32, u32);
        static CACHE: OnceLock<Mutex<HashMap<PlanKey, Composition>>> = OnceLock::new();
        let key = (total_nbves, slice_width.bits(), bwx.bits(), bww.bits());
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache
            .lock()
            .expect("composition plan cache poisoned")
            .get(&key)
        {
            return Ok(hit.clone());
        }
        let planned = Composition::plan(total_nbves, slice_width, bwx, bww)?;
        cache
            .lock()
            .expect("composition plan cache poisoned")
            .insert(key, planned.clone());
        Ok(planned)
    }

    /// The slice width the NBVE multipliers operate at.
    #[must_use]
    pub fn slice_width(&self) -> SliceWidth {
        self.slice_width
    }

    /// The first operand's bitwidth.
    #[must_use]
    pub fn x_width(&self) -> BitWidth {
        self.bwx
    }

    /// The second operand's bitwidth.
    #[must_use]
    pub fn w_width(&self) -> BitWidth {
        self.bww
    }

    /// Number of slices each `X` element is cut into.
    #[must_use]
    pub fn x_slices(&self) -> u32 {
        self.x_slices
    }

    /// Number of slices each `W` element is cut into.
    #[must_use]
    pub fn w_slices(&self) -> u32 {
        self.w_slices
    }

    /// NBVEs cooperating on one dot-product (one per significance pair).
    #[must_use]
    pub fn nbves_per_cluster(&self) -> usize {
        (self.x_slices * self.w_slices) as usize
    }

    /// Independent clusters operating in parallel.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// NBVEs left idle because the cluster size does not divide the total
    /// (a real utilization loss for e.g. 3-slice operands on 16 NBVEs).
    #[must_use]
    pub fn idle_nbves(&self) -> usize {
        self.idle_nbves
    }

    /// Throughput relative to the widest (one-cluster) composition of the
    /// same CVU — the paper's "2× boost" in Figure 2b and "16× higher
    /// performance" for 2-bit × 2-bit (§III-A).
    #[must_use]
    pub fn throughput_multiplier(&self) -> usize {
        self.clusters
    }

    /// The output shift of the NBVE handling x-slice `j`, w-slice `k`:
    /// `s·j + s·k` (Equation 4 exponent with `α = β = s`).
    #[must_use]
    pub fn shift_for(&self, j: u32, k: u32) -> u32 {
        self.slice_width.bits() * (j + k)
    }

    /// Iterates over the (j, k, shift) assignments of one cluster, row-major
    /// over x-slices then w-slices — the order Figure 3a draws the NBVEs in.
    pub fn assignments(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        let w_slices = self.w_slices;
        (0..self.x_slices)
            .flat_map(move |j| (0..w_slices).map(move |k| (j, k, self.shift_for(j, k))))
    }

    /// Hardware utilization of the NBVE array in `0.0..=1.0`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let used = self.clusters * self.nbves_per_cluster();
        used as f64 / (used + self.idle_nbves) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn plan(bx: u32, bw: u32) -> Composition {
        Composition::plan(
            16,
            SliceWidth::BIT2,
            BitWidth::new(bx).unwrap(),
            BitWidth::new(bw).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn homogeneous_8bit_uses_all_16_nbves_as_one_cluster() {
        // Figure 3b.
        let c = plan(8, 8);
        assert_eq!(c.nbves_per_cluster(), 16);
        assert_eq!(c.clusters(), 1);
        assert_eq!(c.idle_nbves(), 0);
        assert_eq!(c.throughput_multiplier(), 1);
        assert!((c.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_8x2_forms_four_clusters_of_four() {
        // Figure 3c.
        let c = plan(8, 2);
        assert_eq!(c.nbves_per_cluster(), 4);
        assert_eq!(c.clusters(), 4);
        assert_eq!(c.throughput_multiplier(), 4);
    }

    #[test]
    fn two_by_two_decomposes_into_16_independent_engines() {
        let c = plan(2, 2);
        assert_eq!(c.nbves_per_cluster(), 1);
        assert_eq!(c.clusters(), 16);
        assert_eq!(c.throughput_multiplier(), 16);
    }

    #[test]
    fn four_by_four_gives_4x() {
        let c = plan(4, 4);
        assert_eq!(c.nbves_per_cluster(), 4);
        assert_eq!(c.clusters(), 4);
    }

    #[test]
    fn odd_widths_round_up_and_may_idle_nbves() {
        // 6-bit x 6-bit with 2-bit slices: 3x3 = 9 NBVEs per cluster;
        // 16 / 9 = 1 cluster, 7 idle.
        let c = plan(6, 6);
        assert_eq!(c.nbves_per_cluster(), 9);
        assert_eq!(c.clusters(), 1);
        assert_eq!(c.idle_nbves(), 7);
        assert!(c.utilization() < 1.0);
    }

    #[test]
    fn too_wide_for_cvu_is_an_error() {
        // 8x8 with 1-bit slices needs 64 NBVEs; a 16-NBVE CVU cannot host it.
        let err = Composition::plan(16, SliceWidth::BIT1, BitWidth::INT8, BitWidth::INT8);
        assert!(matches!(
            err,
            Err(CoreError::CompositionTooLarge {
                required: 64,
                available: 16
            })
        ));
    }

    #[test]
    fn shifts_follow_equation_4() {
        let c = plan(8, 2);
        let shifts: Vec<u32> = c.assignments().map(|(_, _, s)| s).collect();
        // x-slices j = 0..4, w-slices k = 0..1 -> shifts 2(j+k).
        assert_eq!(shifts, vec![0, 2, 4, 6]);
        let c = plan(4, 4);
        let shifts: Vec<u32> = c.assignments().map(|(_, _, s)| s).collect();
        assert_eq!(shifts, vec![0, 2, 2, 4]);
    }

    proptest! {
        /// Cluster accounting is conservative: used + idle == total, and the
        /// throughput multiplier never exceeds the NBVE count.
        #[test]
        fn accounting_invariants(
            total in 1usize..=64,
            s in prop_oneof![Just(1u32), Just(2), Just(4)],
            bx in 1u32..=8,
            bw in 1u32..=8,
        ) {
            let sw = SliceWidth::new(s).unwrap();
            let bxw = BitWidth::new(bx).unwrap();
            let bww = BitWidth::new(bw).unwrap();
            match Composition::plan(total, sw, bxw, bww) {
                Ok(c) => {
                    prop_assert_eq!(
                        c.clusters() * c.nbves_per_cluster() + c.idle_nbves(), total);
                    prop_assert!(c.throughput_multiplier() <= total);
                    prop_assert!(c.clusters() >= 1);
                    let n_assign = c.assignments().count();
                    prop_assert_eq!(n_assign, c.nbves_per_cluster());
                }
                Err(CoreError::CompositionTooLarge { required, available }) => {
                    prop_assert!(required > available);
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
            }
        }
    }
}
