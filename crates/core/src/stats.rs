//! Execution statistics for CVU runs.

use serde::{Deserialize, Serialize};

/// Aggregate statistics across one or more CVU executions.
///
/// The simulator crate accumulates these per layer to derive utilization and
/// effective throughput.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Total CVU cycles consumed.
    pub cycles: u64,
    /// Total multiplier-lane slots available over those cycles.
    pub lane_slots: u64,
    /// Multiplier-lane slots that carried real element pairs.
    pub active_lane_slots: u64,
    /// Element pairs (multiply-accumulates at operand granularity) processed.
    pub element_pairs: u64,
    /// Narrow slice-level products evaluated (one per multiplier firing).
    pub slice_products: u64,
    /// Slice-level products with at least one zero operand — the
    /// "ineffectual" computations a Laconic-style design would skip.
    pub zero_slice_products: u64,
}

impl ExecutionStats {
    /// Creates empty statistics (same as `Default`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of multiplier lanes doing useful work, `0.0..=1.0`
    /// (1.0 when no cycles have been recorded).
    #[must_use]
    pub fn lane_utilization(&self) -> f64 {
        if self.lane_slots == 0 {
            1.0
        } else {
            self.active_lane_slots as f64 / self.lane_slots as f64
        }
    }

    /// Average operand-granularity MACs per cycle.
    #[must_use]
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.element_pairs as f64 / self.cycles as f64
        }
    }

    /// Fraction of slice-level products that were *effectual* (both
    /// operands non-zero); 1.0 when nothing has been recorded. The
    /// complement is the energy-saving opportunity of bit-sparsity-aware
    /// designs (Laconic, ISCA 2019).
    #[must_use]
    pub fn effectual_fraction(&self) -> f64 {
        if self.slice_products == 0 {
            1.0
        } else {
            1.0 - self.zero_slice_products as f64 / self.slice_products as f64
        }
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.cycles += other.cycles;
        self.lane_slots += other.lane_slots;
        self.active_lane_slots += other.active_lane_slots;
        self.element_pairs += other.element_pairs;
        self.slice_products += other.slice_products;
        self.zero_slice_products += other.zero_slice_products;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_empty_stats_is_full() {
        assert_eq!(ExecutionStats::new().lane_utilization(), 1.0);
        assert_eq!(ExecutionStats::new().macs_per_cycle(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ExecutionStats {
            cycles: 2,
            lane_slots: 512,
            active_lane_slots: 256,
            element_pairs: 256,
            slice_products: 100,
            zero_slice_products: 25,
        };
        let b = ExecutionStats {
            cycles: 2,
            lane_slots: 512,
            active_lane_slots: 512,
            element_pairs: 512,
            slice_products: 100,
            zero_slice_products: 15,
        };
        a.merge(&b);
        assert_eq!(a.cycles, 4);
        assert_eq!(a.lane_utilization(), 0.75);
        assert_eq!(a.macs_per_cycle(), 192.0);
        assert!((a.effectual_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn effectual_fraction_defaults_to_one() {
        assert_eq!(ExecutionStats::new().effectual_fraction(), 1.0);
    }
}
