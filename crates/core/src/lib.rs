//! # `bpvec-core` — bit-parallel vector composability, functionally modeled
//!
//! This crate implements the primary contribution of *"Bit-Parallel Vector
//! Composability for Neural Acceleration"* (Ghodrati et al., DAC 2020) as an
//! exact, bit-true functional model:
//!
//! * [`bitslice`] — the bit-slicing algebra of §II (Equations 1–4): a value is
//!   decomposed into narrow slices weighted by powers of two; a wide
//!   dot-product becomes a shift-add combination of narrow dot-products.
//! * [`nbve`] — the **Narrow-Bitwidth Vector Engine**: `L` narrow multipliers
//!   feeding a private adder tree, producing the dot-product of two bit-sliced
//!   sub-vectors (Figure 3a).
//! * [`compose`] — the composition calculus: how many NBVEs form a cluster for
//!   operand bitwidths `(bx, bw)`, how many clusters run in parallel, and which
//!   shift each NBVE's output receives.
//! * [`cvu`] — the **Composable Vector Unit**: 16 NBVEs dynamically composed
//!   (homogeneous 8-bit mode) or decomposed into clusters (heterogeneous
//!   quantized mode), Figure 3b/3c.
//! * [`dotprod`] — reference implementations of Equations 1–4 used to verify
//!   every hardware path against exact integer arithmetic.
//! * [`packed`] — the packed bit-plane operand layout
//!   ([`PackedSliceMatrix`]): whole vectors decomposed once into contiguous
//!   per-significance slice planes reduced by word-level popcount kernels —
//!   the *fast* realization of slice clustering that makes bit-true
//!   execution of full Table I networks practical.
//! * [`kernels`] — the runtime-dispatched realizations of those kernels:
//!   a `OnceLock`-cached dispatch table ([`kernels::active_tier`]) picks
//!   AVX-512 `vpopcntq` or AVX2 vpshufb-popcount lanes when the CPU has
//!   them, with the portable scalar popcount/SWAR kernel as the
//!   always-correct fallback (`BPVEC_KERNEL=scalar` /
//!   `BPVEC_FORCE_SCALAR=1` force it). Every tier is bit-identical —
//!   property-pinned against `dot_exact` for all width × slicing ×
//!   signedness combinations.
//!
//! The model is *exact*: every CVU execution is checked (in tests) against a
//! plain `i64` dot product, for signed and unsigned operands of any supported
//! bitwidth, so the simulator built on top of this crate never silently
//! diverges from real arithmetic.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), bpvec_core::CoreError> {
//! use bpvec_core::{BitWidth, Cvu, CvuConfig, Signedness};
//!
//! // The paper's design point: 16 NBVEs x (L = 16) 2b x 2b multipliers.
//! let cvu = Cvu::new(CvuConfig::paper_default());
//!
//! // Homogeneous 8-bit mode: all 16 NBVEs cooperate on one dot-product.
//! let xs: Vec<i32> = (0..16).map(|i| i * 3 - 20).collect();
//! let ws: Vec<i32> = (0..16).map(|i| 7 - i).collect();
//! let out = cvu.dot_product(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)?;
//! let exact: i64 = xs.iter().zip(&ws).map(|(&x, &w)| (x as i64) * (w as i64)).sum();
//! assert_eq!(out.value, exact);
//! assert_eq!(out.cycles, 1);
//!
//! // Heterogeneous mode (8b x 2b): four clusters run in parallel, so the same
//! // hardware covers a 4x longer vector per cycle.
//! let xs: Vec<i32> = (0..64).map(|i| i - 32).collect();
//! let ws: Vec<i32> = (0..64).map(|i| (i % 4) - 2).collect();
//! let out = cvu.dot_product(&xs, &ws, BitWidth::INT8, BitWidth::new(2)?, Signedness::Signed)?;
//! assert_eq!(out.cycles, 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bitserial;
pub mod bitslice;
pub mod compose;
pub mod cvu;
pub mod dotprod;
pub mod error;
pub mod kernels;
pub mod nbve;
pub mod packed;
pub mod stats;

pub use bitserial::{BitSerialEngine, BitSerialOutput, SerialMode};
pub use bitslice::{BitWidth, Signedness, Slice, SliceWidth, SlicedValue};
pub use compose::Composition;
pub use cvu::{Cvu, CvuConfig, DotProductOutput};
pub use error::CoreError;
pub use kernels::KernelTier;
pub use nbve::{slice_dot_words, slice_dot_words_with, AdderTreeReport, Nbve, NbveOutput};
pub use packed::PackedSliceMatrix;
pub use stats::ExecutionStats;
