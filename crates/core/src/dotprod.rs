//! Reference dot-product formulations (paper §II, Equations 1–4).
//!
//! These functions are the mathematical ground truth the hardware model is
//! verified against. Each mirrors one rewriting step in the paper:
//!
//! 1. [`dot_exact`] — `X·W = Σᵢ xᵢ·wᵢ` (Equation 1, left-hand side).
//! 2. [`dot_bitwise_conventional`] — expand each product over bit pairs and
//!    shift *inside* the element sum (Equation 2) — the "complex left-shift
//!    followed by wide addition" a conventional unit performs.
//! 3. [`dot_bitwise_clustered`] — swap the `Σᵢ` and `Σⱼₖ` operators so bit
//!    pairs of equal significance cluster across the vector (Equation 3).
//! 4. [`dot_slice_clustered`] — the generalized `α`/`β`-bit-slice form
//!    (Equation 4); with `α = β = 1` it reduces to Equation 3.
//!
//! All four produce identical results for all in-range inputs — property
//! tests in this module and exhaustive tests in `tests/` assert it.

use crate::bitslice::{decompose_vector, subvector_into, BitWidth, Signedness, SliceWidth};
use crate::error::CoreError;
use crate::packed::PackedSliceMatrix;

/// Exact 64-bit dot product: `Σᵢ xᵢ·wᵢ` (Equation 1).
///
/// # Errors
///
/// Returns [`CoreError::LengthMismatch`] if the vectors differ in length.
///
/// ```
/// let d = bpvec_core::dotprod::dot_exact(&[1, 2, 3], &[4, -5, 6])?;
/// assert_eq!(d, 1 * 4 - 2 * 5 + 3 * 6);
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
pub fn dot_exact(xs: &[i32], ws: &[i32]) -> Result<i64, CoreError> {
    check_lengths(xs, ws)?;
    Ok(xs
        .iter()
        .zip(ws)
        .map(|(&x, &w)| (x as i64) * (w as i64))
        .sum())
}

fn check_lengths(xs: &[i32], ws: &[i32]) -> Result<(), CoreError> {
    if xs.len() != ws.len() {
        return Err(CoreError::LengthMismatch {
            left: xs.len(),
            right: ws.len(),
        });
    }
    Ok(())
}

/// Equation 2: per-element bitwise expansion with the shift applied inside
/// the element sum (conventional order of operations).
///
/// `X·W = Σᵢ Σⱼ Σₖ 2^(j+k) · xᵢ[j] · wᵢ[k]`
///
/// # Errors
///
/// Returns [`CoreError::LengthMismatch`] on unequal lengths or
/// [`CoreError::ValueOutOfRange`] if any element exceeds its declared width.
pub fn dot_bitwise_conventional(
    xs: &[i32],
    ws: &[i32],
    bwx: BitWidth,
    bww: BitWidth,
    signedness: Signedness,
) -> Result<i64, CoreError> {
    check_lengths(xs, ws)?;
    let xsl = decompose_vector(xs, bwx, SliceWidth::BIT1, signedness)?;
    let wsl = decompose_vector(ws, bww, SliceWidth::BIT1, signedness)?;
    let mut total = 0i64;
    for (xv, wv) in xsl.iter().zip(&wsl) {
        // Conventional order: finish each element's product before summing.
        let mut product = 0i64;
        for a in xv.slices() {
            for b in wv.slices() {
                product += ((a.value as i64) * (b.value as i64)) << (a.shift + b.shift);
            }
        }
        total += product;
    }
    Ok(total)
}

/// Equation 3: cluster bit pairs of equal significance across the vector and
/// factor the power-of-two out of the inner sum.
///
/// `X·W = Σⱼ Σₖ 2^(j+k) · (Σᵢ xᵢ[j] · wᵢ[k])`
///
/// The inner `Σᵢ` is exactly what one 1-bit NBVE computes.
///
/// # Errors
///
/// Same conditions as [`dot_bitwise_conventional`].
pub fn dot_bitwise_clustered(
    xs: &[i32],
    ws: &[i32],
    bwx: BitWidth,
    bww: BitWidth,
    signedness: Signedness,
) -> Result<i64, CoreError> {
    dot_slice_clustered(
        xs,
        ws,
        bwx,
        bww,
        SliceWidth::BIT1,
        SliceWidth::BIT1,
        signedness,
    )
}

/// Equation 4: the generalized bit-slice clustering with slice widths `α`
/// (for `X`) and `β` (for `W`).
///
/// `X·W = Σⱼ Σₖ 2^(αj+βk) · (Σᵢ xᵢ[αj..α(j+1)] · wᵢ[βk..β(k+1)])`
///
/// Each inner sum is the narrow dot-product one NBVE produces; the outer
/// shift-add is the CVU's composition stage.
///
/// # Errors
///
/// Returns [`CoreError::LengthMismatch`] on unequal lengths or
/// [`CoreError::ValueOutOfRange`] if any element exceeds its declared width.
pub fn dot_slice_clustered(
    xs: &[i32],
    ws: &[i32],
    bwx: BitWidth,
    bww: BitWidth,
    alpha: SliceWidth,
    beta: SliceWidth,
    signedness: Signedness,
) -> Result<i64, CoreError> {
    check_lengths(xs, ws)?;
    let xsl = decompose_vector(xs, bwx, alpha, signedness)?;
    let wsl = decompose_vector(ws, bww, beta, signedness)?;
    let nx = alpha.slices_for(bwx) as usize;
    let nw = beta.slices_for(bww) as usize;
    let mut total = 0i64;
    // Slice sub-vectors are re-extracted per significance pair, but into
    // buffers reused across the whole (j, k) loop.
    let mut xsub = Vec::new();
    let mut wsub = Vec::new();
    for j in 0..nx {
        subvector_into(&xsl, j, &mut xsub);
        for k in 0..nw {
            subvector_into(&wsl, k, &mut wsub);
            // The narrow dot-product an NBVE computes...
            let narrow: i64 = xsub
                .iter()
                .zip(&wsub)
                .map(|(&a, &b)| (a as i64) * (b as i64))
                .sum();
            // ...then one shift per (j, k) significance pair, amortized over
            // the whole vector.
            total += narrow << (alpha.bits() * j as u32 + beta.bits() * k as u32);
        }
    }
    Ok(total)
}

/// Equation 4 through the packed bit-plane layout (`α = β = slice_width`):
/// both operands are decomposed once into [`PackedSliceMatrix`] planes and
/// reduced by the fused multi-plane kernel ([`PackedSliceMatrix::dot`]),
/// which weighs every slice pair in a single pass over the words. The
/// kernel is picked from the runtime dispatch table in [`crate::kernels`]
/// (AVX-512 / AVX2 where the CPU supports them, with the scalar reference
/// as the always-correct fallback — `BPVEC_KERNEL=scalar` forces it); all
/// tiers are bit-identical, so this is still the exact Equation 4 the
/// scalar formulations above compute, just the fast realization the
/// systolic GEMM path uses — exposed here so tests can pin the
/// equivalence.
///
/// # Errors
///
/// Returns [`CoreError::LengthMismatch`] on unequal lengths or
/// [`CoreError::ValueOutOfRange`] if any element exceeds its declared width.
pub fn dot_packed(
    xs: &[i32],
    ws: &[i32],
    bwx: BitWidth,
    bww: BitWidth,
    slice_width: SliceWidth,
    signedness: Signedness,
) -> Result<i64, CoreError> {
    check_lengths(xs, ws)?;
    let px = PackedSliceMatrix::pack(xs, bwx, slice_width, signedness)?;
    let pw = PackedSliceMatrix::pack(ws, bww, slice_width, signedness)?;
    Ok(px.dot(0, &pw, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn length_mismatch_is_reported() {
        assert!(matches!(
            dot_exact(&[1, 2], &[1]),
            Err(CoreError::LengthMismatch { left: 2, right: 1 })
        ));
    }

    #[test]
    fn empty_vectors_dot_to_zero() {
        assert_eq!(dot_exact(&[], &[]).unwrap(), 0);
        assert_eq!(
            dot_slice_clustered(
                &[],
                &[],
                BitWidth::INT8,
                BitWidth::INT8,
                SliceWidth::BIT2,
                SliceWidth::BIT2,
                Signedness::Signed
            )
            .unwrap(),
            0
        );
    }

    #[test]
    fn figure2a_example_fixed_bitwidth() {
        // Fig. 2a: two 4-bit x 4-bit elements, 2-bit slices.
        let xs = [0b1011, 0b0110];
        let ws = [0b0111, 0b1001];
        let exact = dot_exact(&xs, &ws).unwrap();
        let sliced = dot_slice_clustered(
            &xs,
            &ws,
            BitWidth::new(4).unwrap(),
            BitWidth::new(4).unwrap(),
            SliceWidth::BIT2,
            SliceWidth::BIT2,
            Signedness::Unsigned,
        )
        .unwrap();
        assert_eq!(sliced, exact);
        assert_eq!(exact, 11 * 7 + 6 * 9);
    }

    #[test]
    fn figure2b_example_flexible_bitwidth() {
        // Fig. 2b: four 4-bit inputs x four 2-bit weights.
        let xs = [0b1011, 0b0110, 0b1111, 0b0001];
        let ws = [0b01, 0b10, 0b11, 0b00];
        let exact = dot_exact(&xs, &ws).unwrap();
        let sliced = dot_slice_clustered(
            &xs,
            &ws,
            BitWidth::new(4).unwrap(),
            BitWidth::INT2,
            SliceWidth::BIT2,
            SliceWidth::BIT2,
            Signedness::Unsigned,
        )
        .unwrap();
        assert_eq!(sliced, exact);
    }

    #[test]
    fn equations_agree_on_mixed_signs() {
        let xs = [-128, 127, -1, 0, 64, -64];
        let ws = [127, -128, -1, -1, 3, -3];
        let exact = dot_exact(&xs, &ws).unwrap();
        let eq2 =
            dot_bitwise_conventional(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
                .unwrap();
        let eq3 =
            dot_bitwise_clustered(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
                .unwrap();
        let eq4 = dot_slice_clustered(
            &xs,
            &ws,
            BitWidth::INT8,
            BitWidth::INT8,
            SliceWidth::BIT2,
            SliceWidth::BIT2,
            Signedness::Signed,
        )
        .unwrap();
        assert_eq!(eq2, exact);
        assert_eq!(eq3, exact);
        assert_eq!(eq4, exact);
    }

    proptest! {
        /// All four formulations agree, across bitwidths, slicings and
        /// signedness (the Fig. 2 identity, generalized).
        #[test]
        fn formulations_agree(
            bwx in 1u32..=8,
            bww in 1u32..=8,
            signed in proptest::bool::ANY,
            alpha in prop_oneof![Just(1u32), Just(2), Just(4)],
            beta in prop_oneof![Just(1u32), Just(2), Just(4)],
            seed in proptest::num::u64::ANY,
        ) {
            use rand::{Rng, SeedableRng};
            let signedness = if signed { Signedness::Signed } else { Signedness::Unsigned };
            let bx = BitWidth::new(bwx).unwrap();
            let bw = BitWidth::new(bww).unwrap();
            let (xlo, xhi) = bx.range(signedness);
            let (wlo, whi) = bw.range(signedness);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(0..48);
            let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(xlo..=xhi)).collect();
            let ws: Vec<i32> = (0..n).map(|_| rng.gen_range(wlo..=whi)).collect();
            let exact = dot_exact(&xs, &ws).unwrap();
            let a = SliceWidth::new(alpha).unwrap();
            let b = SliceWidth::new(beta).unwrap();
            prop_assert_eq!(
                dot_bitwise_conventional(&xs, &ws, bx, bw, signedness).unwrap(), exact);
            prop_assert_eq!(
                dot_bitwise_clustered(&xs, &ws, bx, bw, signedness).unwrap(), exact);
            prop_assert_eq!(
                dot_slice_clustered(&xs, &ws, bx, bw, a, b, signedness).unwrap(), exact);
        }
    }
}
