//! The Composable Vector Unit (paper Figure 3).
//!
//! A CVU owns `num_nbves` [`Nbve`]s and executes vector dot-products by
//! (1) bit-slicing the operand vectors, (2) dispatching each (x-slice,
//! w-slice) sub-vector pair to one NBVE of a cluster, (3) shifting each
//! NBVE's scalar by its significance, and (4) aggregating — privately inside
//! each cluster, then globally across clusters into a 64-bit accumulator.
//!
//! Vectors longer than one composition's per-cycle capacity are processed in
//! multiple cycles, mirroring how the systolic array streams a long
//! dot-product through the same physical unit.

use serde::{Deserialize, Serialize};

use crate::bitslice::{
    decompose_vector_into, subvector_into, BitWidth, Signedness, SliceWidth, SlicedValue,
};
use crate::compose::Composition;
use crate::error::CoreError;
use crate::nbve::{Nbve, ACCUMULATOR_BITS};
use crate::stats::ExecutionStats;

/// Static geometry of a CVU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CvuConfig {
    /// Number of NBVEs in the unit.
    pub num_nbves: usize,
    /// Multiplier lanes per NBVE (the paper's `L`).
    pub lanes: usize,
    /// Multiplier operand width (the paper's bit-slice size).
    pub slice_width: SliceWidth,
    /// Maximum supported operand bitwidth (8 in the paper).
    pub max_bitwidth: BitWidth,
}

impl CvuConfig {
    /// The paper's chosen design point (§III-A): 2-bit slicing, 8-bit maximum
    /// operands, hence `(8/2)² = 16` NBVEs, each with `L = 16` lanes.
    #[must_use]
    pub fn paper_default() -> Self {
        CvuConfig {
            num_nbves: 16,
            lanes: 16,
            slice_width: SliceWidth::BIT2,
            max_bitwidth: BitWidth::INT8,
        }
    }

    /// A CVU geometry derived from a slice width, keeping the full-width
    /// composition exactly one cluster: `(max/s)²` NBVEs of `lanes` lanes.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::InvalidSliceWidth`]/[`CoreError::InvalidBitWidth`]
    /// from the component constructors.
    pub fn for_slicing(slice_bits: u32, max_bits: u32, lanes: usize) -> Result<Self, CoreError> {
        let slice_width = SliceWidth::new(slice_bits)?;
        let max_bitwidth = BitWidth::new(max_bits)?;
        let per_side = slice_width.slices_for(max_bitwidth) as usize;
        Ok(CvuConfig {
            num_nbves: per_side * per_side,
            lanes,
            slice_width,
            max_bitwidth,
        })
    }

    /// Element pairs processed per cycle in the widest (one-cluster) mode.
    #[must_use]
    pub fn base_lanes_per_cycle(&self) -> usize {
        self.lanes
    }

    /// Total narrow multipliers in the unit.
    #[must_use]
    pub fn total_multipliers(&self) -> usize {
        self.num_nbves * self.lanes
    }
}

impl Default for CvuConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Result of one CVU dot-product execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DotProductOutput {
    /// The exact dot-product value (64-bit accumulator).
    pub value: i64,
    /// Cycles the CVU needed (ceil(n / per-cycle capacity)).
    pub cycles: u64,
    /// Element pairs the unit could have processed in those cycles.
    pub capacity: u64,
    /// The composition used.
    pub composition: Composition,
    /// Lane-level statistics.
    pub stats: ExecutionStats,
}

/// A Composable Vector Unit: `num_nbves` NBVEs that are dynamically composed
/// or decomposed at bit granularity (paper §III-A).
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cvu {
    config: CvuConfig,
    nbve: Nbve,
}

impl Cvu {
    /// Creates a CVU with the given geometry.
    #[must_use]
    pub fn new(config: CvuConfig) -> Self {
        let nbve = Nbve::new(config.slice_width, config.lanes);
        Cvu { config, nbve }
    }

    /// The unit's static configuration.
    #[must_use]
    pub fn config(&self) -> &CvuConfig {
        &self.config
    }

    /// Plans the composition for operand bitwidths `(bwx, bww)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CompositionTooLarge`] if the bitwidths exceed
    /// what this CVU can compose, or [`CoreError::InvalidBitWidth`] if they
    /// exceed [`CvuConfig::max_bitwidth`].
    pub fn compose(&self, bwx: BitWidth, bww: BitWidth) -> Result<Composition, CoreError> {
        if bwx > self.config.max_bitwidth || bww > self.config.max_bitwidth {
            return Err(CoreError::InvalidBitWidth {
                bits: bwx.bits().max(bww.bits()),
            });
        }
        Composition::plan_cached(self.config.num_nbves, self.config.slice_width, bwx, bww)
    }

    /// Element pairs processed per cycle under bitwidths `(bwx, bww)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cvu::compose`].
    pub fn throughput_per_cycle(&self, bwx: BitWidth, bww: BitWidth) -> Result<usize, CoreError> {
        Ok(self.compose(bwx, bww)?.clusters() * self.config.lanes)
    }

    /// Executes a full vector dot-product, bit-true.
    ///
    /// The vectors are processed `clusters × L` elements per cycle: each
    /// cluster takes one `L`-chunk, slices it, distributes the slice
    /// sub-vectors over its NBVEs, shift-adds privately, and the CVU
    /// accumulates cluster outputs globally.
    ///
    /// # Errors
    ///
    /// * [`CoreError::LengthMismatch`] — operand vectors differ in length.
    /// * [`CoreError::ValueOutOfRange`] — an element exceeds its bitwidth.
    /// * [`CoreError::CompositionTooLarge`] / [`CoreError::InvalidBitWidth`] —
    ///   the bitwidths do not fit this CVU.
    pub fn dot_product(
        &self,
        xs: &[i32],
        ws: &[i32],
        bwx: BitWidth,
        bww: BitWidth,
        signedness: Signedness,
    ) -> Result<DotProductOutput, CoreError> {
        self.dot_product_mixed(xs, ws, bwx, bww, signedness, signedness)
    }

    /// Executes a dot-product with *per-operand* signedness — the form real
    /// quantized inference needs (post-ReLU activations are unsigned while
    /// weights stay two's complement).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cvu::dot_product`].
    pub fn dot_product_mixed(
        &self,
        xs: &[i32],
        ws: &[i32],
        bwx: BitWidth,
        bww: BitWidth,
        sx: Signedness,
        sw: Signedness,
    ) -> Result<DotProductOutput, CoreError> {
        if xs.len() != ws.len() {
            return Err(CoreError::LengthMismatch {
                left: xs.len(),
                right: ws.len(),
            });
        }
        let composition = self.compose(bwx, bww)?;
        let lanes = self.config.lanes;
        let chunk_per_cycle = composition.clusters() * lanes;
        let mut value = 0i64;
        let mut stats = ExecutionStats::new();
        let mut cycles = 0u64;
        // Slicing scratch, reused across every chunk of the whole vector so
        // the per-cycle loop does not grow fresh buffers each iteration.
        let mut scratch = SliceScratch::default();

        for cycle_chunk in xs.chunks(chunk_per_cycle).zip(ws.chunks(chunk_per_cycle)) {
            let (xc, wc) = cycle_chunk;
            cycles += 1;
            stats.cycles += 1;
            // Every multiplier lane is clocked each cycle, whether or not its
            // NBVE has real work (idle NBVEs still burn the slot).
            stats.lane_slots += self.config.total_multipliers() as u64;
            // Each cluster takes one L-sized sub-chunk of this cycle's chunk.
            for (xl, wl) in xc.chunks(lanes).zip(wc.chunks(lanes)) {
                value = value
                    .checked_add(self.cluster_dot(
                        xl,
                        wl,
                        &composition,
                        sx,
                        sw,
                        &mut stats,
                        &mut scratch,
                    )?)
                    .ok_or(CoreError::AccumulatorOverflow {
                        required_bits: ACCUMULATOR_BITS + 1,
                        provided_bits: ACCUMULATOR_BITS,
                    })?;
                stats.element_pairs += xl.len() as u64;
            }
        }

        // Handle the empty-vector case: zero cycles, zero value.
        if xs.is_empty() {
            cycles = 0;
        }

        Ok(DotProductOutput {
            value,
            cycles,
            capacity: cycles * chunk_per_cycle as u64,
            composition,
            stats,
        })
    }

    /// One cluster's work for one cycle: slice an `L`-chunk and run every
    /// (j, k) significance pair on one NBVE, shift-adding the outputs.
    /// All slicing goes through `scratch`'s reused buffers.
    #[allow(clippy::too_many_arguments)]
    fn cluster_dot(
        &self,
        xs: &[i32],
        ws: &[i32],
        composition: &Composition,
        sx: Signedness,
        sw: Signedness,
        stats: &mut ExecutionStats,
        scratch: &mut SliceScratch,
    ) -> Result<i64, CoreError> {
        decompose_vector_into(
            xs,
            composition.x_width(),
            self.config.slice_width,
            sx,
            &mut scratch.xsl,
        )?;
        decompose_vector_into(
            ws,
            composition.w_width(),
            self.config.slice_width,
            sw,
            &mut scratch.wsl,
        )?;
        let mut cluster_sum = 0i64;
        for (j, k, shift) in composition.assignments() {
            subvector_into(&scratch.xsl, j as usize, &mut scratch.xsub);
            subvector_into(&scratch.wsl, k as usize, &mut scratch.wsub);
            let out = self.nbve.dot(&scratch.xsub, &scratch.wsub)?;
            stats.active_lane_slots += out.active_lanes as u64;
            stats.slice_products += scratch.xsub.len() as u64;
            stats.zero_slice_products += scratch
                .xsub
                .iter()
                .zip(&scratch.wsub)
                .filter(|&(&a, &b)| a == 0 || b == 0)
                .count() as u64;
            cluster_sum += out.value << shift;
        }
        Ok(cluster_sum)
    }
}

/// Reusable slicing buffers for [`Cvu::dot_product_mixed`]'s inner loop:
/// one decomposition and one sub-vector buffer per operand, cleared and
/// refilled per chunk instead of reallocated.
#[derive(Debug, Default)]
struct SliceScratch {
    xsl: Vec<SlicedValue>,
    wsl: Vec<SlicedValue>,
    xsub: Vec<i32>,
    wsub: Vec<i32>,
}

impl Default for Cvu {
    fn default() -> Self {
        Cvu::new(CvuConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dotprod::dot_exact;
    use proptest::prelude::*;

    fn paper_cvu() -> Cvu {
        Cvu::new(CvuConfig::paper_default())
    }

    #[test]
    fn config_paper_default_matches_section_3a() {
        let c = CvuConfig::paper_default();
        assert_eq!(c.num_nbves, 16);
        assert_eq!(c.lanes, 16);
        assert_eq!(c.slice_width, SliceWidth::BIT2);
        assert_eq!(c.total_multipliers(), 256);
    }

    #[test]
    fn for_slicing_derives_square_geometry() {
        let c = CvuConfig::for_slicing(1, 8, 4).unwrap();
        assert_eq!(c.num_nbves, 64);
        let c = CvuConfig::for_slicing(4, 8, 16).unwrap();
        assert_eq!(c.num_nbves, 4);
    }

    #[test]
    fn homogeneous_8bit_single_cycle_for_l_elements() {
        let cvu = paper_cvu();
        let xs: Vec<i32> = (0..16).map(|i| i * 5 - 40).collect();
        let ws: Vec<i32> = (0..16).map(|i| 60 - i * 7).collect();
        let out = cvu
            .dot_product(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
        assert_eq!(out.cycles, 1);
        assert_eq!(out.composition.clusters(), 1);
    }

    #[test]
    fn long_vector_takes_multiple_cycles() {
        let cvu = paper_cvu();
        let xs: Vec<i32> = (0..100).map(|i| (i % 255) - 127).collect();
        let ws: Vec<i32> = (0..100).map(|i| ((i * 7) % 255) - 127).collect();
        let out = cvu
            .dot_product(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
        assert_eq!(out.cycles, 7); // ceil(100 / 16)
    }

    #[test]
    fn het_mode_4x4_quadruples_per_cycle_capacity() {
        let cvu = paper_cvu();
        assert_eq!(
            cvu.throughput_per_cycle(BitWidth::INT4, BitWidth::INT4)
                .unwrap(),
            64
        );
        let xs: Vec<i32> = (0..64).map(|i| (i % 15) - 8).collect();
        let ws: Vec<i32> = (0..64).map(|i| ((i * 3) % 15) - 8).collect();
        let out = cvu
            .dot_product(&xs, &ws, BitWidth::INT4, BitWidth::INT4, Signedness::Signed)
            .unwrap();
        assert_eq!(out.cycles, 1);
        assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
    }

    #[test]
    fn het_mode_2x2_gives_16x() {
        let cvu = paper_cvu();
        assert_eq!(
            cvu.throughput_per_cycle(BitWidth::INT2, BitWidth::INT2)
                .unwrap(),
            256
        );
    }

    #[test]
    fn unsigned_mode_matches_reference() {
        let cvu = paper_cvu();
        let xs: Vec<i32> = (0..48).map(|i| (i * 11) % 256).collect();
        let ws: Vec<i32> = (0..48).map(|i| (i * 29) % 256).collect();
        let out = cvu
            .dot_product(
                &xs,
                &ws,
                BitWidth::INT8,
                BitWidth::INT8,
                Signedness::Unsigned,
            )
            .unwrap();
        assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
    }

    #[test]
    fn wider_than_max_bitwidth_is_rejected_by_cvu() {
        // A CVU configured for 4-bit maximum cannot take 8-bit operands.
        let cvu = Cvu::new(CvuConfig::for_slicing(2, 4, 8).unwrap());
        assert!(cvu
            .dot_product(
                &[1],
                &[1],
                BitWidth::INT8,
                BitWidth::INT8,
                Signedness::Signed
            )
            .is_err());
    }

    #[test]
    fn out_of_range_element_is_rejected() {
        let cvu = paper_cvu();
        assert!(matches!(
            cvu.dot_product(
                &[5],
                &[1],
                BitWidth::INT2,
                BitWidth::INT2,
                Signedness::Signed
            ),
            Err(CoreError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_dot_product_is_zero_in_zero_cycles() {
        let cvu = paper_cvu();
        let out = cvu
            .dot_product(&[], &[], BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        assert_eq!(out.value, 0);
        assert_eq!(out.cycles, 0);
    }

    #[test]
    fn stats_show_full_lane_utilization_for_aligned_lengths() {
        let cvu = paper_cvu();
        let xs = vec![1i32; 32];
        let ws = vec![1i32; 32];
        let out = cvu
            .dot_product(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        assert_eq!(out.value, 32);
        assert_eq!(out.cycles, 2);
        assert_eq!(out.stats.element_pairs, 32);
    }

    fn arb_signedness() -> impl Strategy<Value = Signedness> {
        prop_oneof![Just(Signedness::Signed), Just(Signedness::Unsigned)]
    }

    proptest! {
        /// The CVU is bit-true against the exact dot product for every
        /// bitwidth combination, signedness and vector length — the crate's
        /// central correctness property (paper Equations 1 vs 4).
        #[test]
        fn cvu_matches_exact_dot_product(
            bx in 1u32..=8,
            bw in 1u32..=8,
            signedness in arb_signedness(),
            seed in proptest::num::u64::ANY,
        ) {
            use rand::{Rng, SeedableRng};
            let cvu = paper_cvu();
            let bwx = BitWidth::new(bx).unwrap();
            let bww = BitWidth::new(bw).unwrap();
            let (xlo, xhi) = bwx.range(signedness);
            let (wlo, whi) = bww.range(signedness);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(0..200);
            let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(xlo..=xhi)).collect();
            let ws: Vec<i32> = (0..n).map(|_| rng.gen_range(wlo..=whi)).collect();
            let out = cvu.dot_product(&xs, &ws, bwx, bww, signedness).unwrap();
            prop_assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
        }

        /// Cycle counts follow the composition: ceil(n / (clusters * L)).
        #[test]
        fn cycles_match_composition(
            bx in 1u32..=8,
            bw in 1u32..=8,
            n in 0usize..400,
        ) {
            let cvu = paper_cvu();
            let bwx = BitWidth::new(bx).unwrap();
            let bww = BitWidth::new(bw).unwrap();
            let xs = vec![0i32; n];
            let ws = vec![0i32; n];
            let out = cvu.dot_product(&xs, &ws, bwx, bww, Signedness::Signed).unwrap();
            let per_cycle = cvu.throughput_per_cycle(bwx, bww).unwrap();
            prop_assert_eq!(out.cycles, n.div_ceil(per_cycle) as u64);
        }

        /// Alternate CVU geometries (1-bit and 4-bit slicing) are also
        /// bit-true.
        #[test]
        fn alternate_slicings_are_bit_true(
            slice in prop_oneof![Just(1u32), Just(4u32)],
            seed in proptest::num::u64::ANY,
        ) {
            use rand::{Rng, SeedableRng};
            let cvu = Cvu::new(CvuConfig::for_slicing(slice, 8, 8).unwrap());
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(0..100);
            let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(-128..=127)).collect();
            let ws: Vec<i32> = (0..n).map(|_| rng.gen_range(-128..=127)).collect();
            let out = cvu
                .dot_product(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
                .unwrap();
            prop_assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
        }
    }
}
