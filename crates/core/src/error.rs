//! Error type for the functional model.

use std::error::Error;
use std::fmt;

/// Errors produced by the bit-slicing algebra and the CVU functional model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A bitwidth outside the supported `1..=8` range was requested.
    InvalidBitWidth {
        /// The rejected bitwidth.
        bits: u32,
    },
    /// A slice width that is not one of `1, 2, 4, 8` was requested.
    InvalidSliceWidth {
        /// The rejected slice width.
        bits: u32,
    },
    /// A value does not fit in the declared bitwidth/signedness.
    ValueOutOfRange {
        /// The offending value.
        value: i32,
        /// The declared bitwidth.
        bits: u32,
        /// Whether the declared range was signed.
        signed: bool,
    },
    /// The two vectors of a dot product have different lengths.
    LengthMismatch {
        /// Length of the first operand vector.
        left: usize,
        /// Length of the second operand vector.
        right: usize,
    },
    /// The requested operand bitwidths need more NBVEs than the CVU has.
    CompositionTooLarge {
        /// NBVEs required for one cluster.
        required: usize,
        /// NBVEs available in the CVU.
        available: usize,
    },
    /// The adder tree or accumulator would overflow its configured width.
    AccumulatorOverflow {
        /// Bits required by the worst-case value.
        required_bits: u32,
        /// Bits provided by the hardware.
        provided_bits: u32,
    },
    /// A width string (`"int4"`, `"2b"`, …) could not be parsed.
    ParseWidth {
        /// What was being parsed ("bitwidth" or "slice width").
        what: &'static str,
        /// The rejected input.
        input: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidBitWidth { bits } => {
                write!(f, "bitwidth {bits} is outside the supported range 1..=8")
            }
            CoreError::InvalidSliceWidth { bits } => {
                write!(f, "slice width {bits} is not one of 1, 2, 4, 8")
            }
            CoreError::ValueOutOfRange {
                value,
                bits,
                signed,
            } => {
                let kind = if *signed { "signed" } else { "unsigned" };
                write!(f, "value {value} does not fit in {bits}-bit {kind} range")
            }
            CoreError::LengthMismatch { left, right } => {
                write!(
                    f,
                    "dot-product operands differ in length: {left} vs {right}"
                )
            }
            CoreError::CompositionTooLarge {
                required,
                available,
            } => write!(
                f,
                "composition needs {required} NBVEs per cluster but the CVU has {available}"
            ),
            CoreError::AccumulatorOverflow {
                required_bits,
                provided_bits,
            } => write!(
                f,
                "accumulation needs {required_bits} bits but hardware provides {provided_bits}"
            ),
            CoreError::ParseWidth { what, input } => {
                write!(f, "cannot parse `{input}` as a {what}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let errs = [
            CoreError::InvalidBitWidth { bits: 9 },
            CoreError::InvalidSliceWidth { bits: 3 },
            CoreError::ValueOutOfRange {
                value: 300,
                bits: 8,
                signed: true,
            },
            CoreError::LengthMismatch { left: 3, right: 4 },
            CoreError::CompositionTooLarge {
                required: 32,
                available: 16,
            },
            CoreError::AccumulatorOverflow {
                required_bits: 70,
                provided_bits: 64,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "lowercase: {s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
