//! Bit-slicing algebra (paper §II, Equations 1–4).
//!
//! A digital value is the sum of its bit groups weighted by powers of two.
//! This module decomposes `b`-bit operands into `s`-bit slices so that a wide
//! multiplication can be rewritten as a shift-add combination of narrow
//! multiplications — the property the CVU exploits to interleave bit-level
//! parallelism with data-level parallelism.
//!
//! Two number systems are supported:
//!
//! * [`Signedness::Unsigned`] — the paper's presentation: every slice is an
//!   unsigned `s`-bit magnitude.
//! * [`Signedness::Signed`] — two's complement, the form real quantized DNNs
//!   use: the *most significant* slice is interpreted as a signed `s`-bit
//!   value, all lower slices remain unsigned. This is the standard
//!   BitFusion-style signed decomposition and keeps every narrow multiplier at
//!   `(s+1)`-bit signed precision.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::CoreError;

/// Maximum operand bitwidth supported by the paper's CVU (INT8 era).
pub const MAX_BITWIDTH: u32 = 8;

/// An operand bitwidth in `1..=8` bits.
///
/// The newtype guarantees (per C-NEWTYPE / C-VALIDATE) that every bitwidth
/// flowing through the model is in the range the hardware supports.
///
/// ```
/// use bpvec_core::BitWidth;
/// let b = BitWidth::new(4)?;
/// assert_eq!(b.bits(), 4);
/// assert!(BitWidth::new(9).is_err());
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitWidth(u32);

impl BitWidth {
    /// The 8-bit width used in the homogeneous mode (and by the baselines).
    pub const INT8: BitWidth = BitWidth(8);
    /// The 4-bit width used by the heterogeneous-quantization workloads.
    pub const INT4: BitWidth = BitWidth(4);
    /// The 2-bit width (the narrowest datatype evaluated in the paper).
    pub const INT2: BitWidth = BitWidth(2);

    /// Creates a bitwidth.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBitWidth`] unless `1 <= bits <= 8`.
    pub fn new(bits: u32) -> Result<Self, CoreError> {
        if (1..=MAX_BITWIDTH).contains(&bits) {
            Ok(BitWidth(bits))
        } else {
            Err(CoreError::InvalidBitWidth { bits })
        }
    }

    /// The number of bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Inclusive value range representable at this width.
    #[must_use]
    pub fn range(self, signedness: Signedness) -> (i32, i32) {
        match signedness {
            Signedness::Unsigned => (0, (1i32 << self.0) - 1),
            Signedness::Signed => (-(1i32 << (self.0 - 1)), (1i32 << (self.0 - 1)) - 1),
        }
    }

    /// Checks that `value` fits at this width.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueOutOfRange`] if it does not.
    pub fn check(self, value: i32, signedness: Signedness) -> Result<(), CoreError> {
        let (lo, hi) = self.range(signedness);
        if (lo..=hi).contains(&value) {
            Ok(())
        } else {
            Err(CoreError::ValueOutOfRange {
                value,
                bits: self.0,
                signed: signedness == Signedness::Signed,
            })
        }
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

impl TryFrom<u32> for BitWidth {
    type Error = CoreError;

    fn try_from(bits: u32) -> Result<Self, Self::Error> {
        BitWidth::new(bits)
    }
}

/// Parses the spellings precision policies use on CLIs and in CSV: a bare
/// width (`"4"`), the [`fmt::Display`] form (`"4b"`), or the datatype name
/// (`"int4"` / `"INT4"`).
impl FromStr for BitWidth {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().to_ascii_lowercase();
        let t = t.strip_prefix("int").unwrap_or(&t);
        let t = t.strip_suffix('b').unwrap_or(t);
        let bits: u32 = t.parse().map_err(|_| CoreError::ParseWidth {
            what: "bitwidth",
            input: s.to_string(),
        })?;
        BitWidth::new(bits)
    }
}

/// A slice (bit-group) width: the operand width of the narrow multipliers.
///
/// The paper explores 1-bit and 2-bit slicing in Figure 4 (and mentions 4-bit
/// as a utilization-losing alternative); 8 is allowed so the "no slicing"
/// degenerate case can be expressed in ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SliceWidth(u32);

impl SliceWidth {
    /// 1-bit slicing (multipliers degenerate to AND gates).
    pub const BIT1: SliceWidth = SliceWidth(1);
    /// 2-bit slicing — the paper's chosen design point.
    pub const BIT2: SliceWidth = SliceWidth(2);
    /// 4-bit slicing (ablation).
    pub const BIT4: SliceWidth = SliceWidth(4);
    /// 8-bit "slicing" — a conventional, non-composable unit.
    pub const BIT8: SliceWidth = SliceWidth(8);

    /// Creates a slice width.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSliceWidth`] unless `bits` is 1, 2, 4 or 8.
    pub fn new(bits: u32) -> Result<Self, CoreError> {
        match bits {
            1 | 2 | 4 | 8 => Ok(SliceWidth(bits)),
            _ => Err(CoreError::InvalidSliceWidth { bits }),
        }
    }

    /// The number of bits per slice.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Number of slices needed to cover `width` (i.e. `ceil(width / slice)`).
    #[must_use]
    pub fn slices_for(self, width: BitWidth) -> u32 {
        width.bits().div_ceil(self.0)
    }
}

impl fmt::Display for SliceWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b-slice", self.0)
    }
}

impl TryFrom<u32> for SliceWidth {
    type Error = CoreError;

    fn try_from(bits: u32) -> Result<Self, Self::Error> {
        SliceWidth::new(bits)
    }
}

/// Parses a bare width (`"2"`), the short form (`"2b"`), or the
/// [`fmt::Display`] form (`"2b-slice"`).
impl FromStr for SliceWidth {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().to_ascii_lowercase();
        let t = t.strip_suffix("-slice").unwrap_or(&t);
        let t = t.strip_suffix('b').unwrap_or(t);
        let bits: u32 = t.parse().map_err(|_| CoreError::ParseWidth {
            what: "slice width",
            input: s.to_string(),
        })?;
        SliceWidth::new(bits)
    }
}

/// Whether operands are interpreted as two's-complement or unsigned.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Signedness {
    /// Two's-complement operands (real quantized DNN tensors).
    #[default]
    Signed,
    /// Unsigned operands (the paper's presentation, and e.g. post-ReLU
    /// activations under asymmetric quantization).
    Unsigned,
}

impl fmt::Display for Signedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signedness::Signed => f.write_str("signed"),
            Signedness::Unsigned => f.write_str("unsigned"),
        }
    }
}

/// One bit-slice of a value: a narrow magnitude plus its significance shift.
///
/// The slice's contribution to the original value is `value << shift`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slice {
    /// The (small) slice value. Unsigned slices are in `0..2^s`; a signed
    /// most-significant slice is in `-2^(s-1)..2^(s-1)`.
    pub value: i32,
    /// Left-shift giving this slice's significance (a multiple of the slice
    /// width).
    pub shift: u32,
    /// True for the most-significant slice of a signed value: the only slice
    /// a signed-aware narrow multiplier must treat as two's complement.
    pub signed: bool,
}

impl Slice {
    /// The slice's weighted contribution, `value * 2^shift`.
    #[must_use]
    pub fn contribution(self) -> i64 {
        (self.value as i64) << self.shift
    }
}

/// A value decomposed into slices, least-significant first.
///
/// Invariant: `sum(slice.contribution()) == original value`.
///
/// ```
/// use bpvec_core::{BitWidth, Signedness, SliceWidth, SlicedValue};
/// let sv = SlicedValue::decompose(-77, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)?;
/// assert_eq!(sv.slices().len(), 4);
/// assert_eq!(sv.reconstruct(), -77);
/// # Ok::<(), bpvec_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlicedValue {
    slices: Vec<Slice>,
    original: i32,
    width: BitWidth,
    slice_width: SliceWidth,
    signedness: Signedness,
}

impl SlicedValue {
    /// Decomposes `value` (declared `width`, `signedness`) into
    /// `ceil(width/slice_width)` slices.
    ///
    /// For signed values the top slice carries the sign (two's-complement
    /// weighting); all other slices are unsigned. See the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ValueOutOfRange`] if `value` does not fit in the
    /// declared width.
    pub fn decompose(
        value: i32,
        width: BitWidth,
        slice_width: SliceWidth,
        signedness: Signedness,
    ) -> Result<Self, CoreError> {
        width.check(value, signedness)?;
        let s = slice_width.bits();
        let n = slice_width.slices_for(width);
        // Work on the two's-complement bit pattern padded to n*s bits.
        let total_bits = n * s;
        let mask = if total_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << total_bits) - 1
        };
        let pattern = (value as u32) & mask;
        let slice_mask = (1u32 << s) - 1;
        let mut slices = Vec::with_capacity(n as usize);
        for k in 0..n {
            let raw = (pattern >> (k * s)) & slice_mask;
            let is_top = k == n - 1;
            let (v, signed) = if signedness == Signedness::Signed && is_top {
                // Sign-extend the top slice.
                let sign_bit = 1u32 << (s - 1);
                let v = if raw & sign_bit != 0 {
                    (raw as i32) - (1i32 << s)
                } else {
                    raw as i32
                };
                (v, true)
            } else {
                (raw as i32, false)
            };
            slices.push(Slice {
                value: v,
                shift: k * s,
                signed,
            });
        }
        Ok(SlicedValue {
            slices,
            original: value,
            width,
            slice_width,
            signedness,
        })
    }

    /// The slices, least significant first.
    #[must_use]
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// The value that was decomposed.
    #[must_use]
    pub fn original(&self) -> i32 {
        self.original
    }

    /// The declared operand width.
    #[must_use]
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// The slice width used for the decomposition.
    #[must_use]
    pub fn slice_width(&self) -> SliceWidth {
        self.slice_width
    }

    /// The declared signedness.
    #[must_use]
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }

    /// Recombines the slices (`sum(value_k << shift_k)`).
    ///
    /// This is the shift-add reduction the CVU's global stage performs; by the
    /// type's invariant it always equals [`Self::original`].
    #[must_use]
    pub fn reconstruct(&self) -> i64 {
        self.slices.iter().map(|s| s.contribution()).sum()
    }
}

/// Decomposes every element of a vector with shared parameters.
///
/// # Errors
///
/// Fails with [`CoreError::ValueOutOfRange`] on the first element that does
/// not fit in `width`.
pub fn decompose_vector(
    values: &[i32],
    width: BitWidth,
    slice_width: SliceWidth,
    signedness: Signedness,
) -> Result<Vec<SlicedValue>, CoreError> {
    let mut out = Vec::new();
    decompose_vector_into(values, width, slice_width, signedness, &mut out)?;
    Ok(out)
}

/// [`decompose_vector`] into a caller-owned buffer, so hot loops (the CVU's
/// per-chunk slicing, the scalar Equation 3/4 formulations) reuse one
/// allocation across calls instead of growing a fresh `Vec` each time.
///
/// `out` is cleared first; on error it is left cleared and the first
/// offending element is reported.
///
/// # Errors
///
/// Fails with [`CoreError::ValueOutOfRange`] on the first element that does
/// not fit in `width`.
pub fn decompose_vector_into(
    values: &[i32],
    width: BitWidth,
    slice_width: SliceWidth,
    signedness: Signedness,
    out: &mut Vec<SlicedValue>,
) -> Result<(), CoreError> {
    out.clear();
    out.reserve(values.len());
    for &v in values {
        match SlicedValue::decompose(v, width, slice_width, signedness) {
            Ok(sv) => out.push(sv),
            Err(e) => {
                out.clear();
                return Err(e);
            }
        }
    }
    Ok(())
}

/// Extracts the `k`-th slice value of each element — the bit-sliced
/// *sub-vector* an NBVE consumes (paper Figure 2, shaded groups).
///
/// # Panics
///
/// Panics if `k` is out of range for any element (all elements produced by
/// [`decompose_vector`] share the same slice count, so this cannot happen for
/// its output).
#[must_use]
pub fn subvector(sliced: &[SlicedValue], k: usize) -> Vec<i32> {
    subvector_iter(sliced, k).collect()
}

/// Iterator form of [`subvector`]: the `k`-th slice value of each element,
/// lazily, without materializing the sub-vector.
///
/// # Panics
///
/// As [`subvector`], panics (on consumption) if `k` is out of range for an
/// element.
pub fn subvector_iter(sliced: &[SlicedValue], k: usize) -> impl ExactSizeIterator<Item = i32> + '_ {
    sliced.iter().map(move |sv| sv.slices()[k].value)
}

/// [`subvector`] into a caller-owned buffer: `out` is cleared and refilled,
/// so per-significance extraction in a `(j, k)` loop reuses one allocation
/// instead of materializing a fresh `Vec` per pair.
///
/// # Panics
///
/// As [`subvector`], panics if `k` is out of range for any element.
pub fn subvector_into(sliced: &[SlicedValue], k: usize, out: &mut Vec<i32>) {
    out.clear();
    out.extend(subvector_iter(sliced, k));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bitwidth_rejects_out_of_range() {
        assert!(BitWidth::new(0).is_err());
        assert!(BitWidth::new(9).is_err());
        for b in 1..=8 {
            assert_eq!(BitWidth::new(b).unwrap().bits(), b);
        }
    }

    #[test]
    fn slicewidth_accepts_powers_of_two_only() {
        for b in [1u32, 2, 4, 8] {
            assert_eq!(SliceWidth::new(b).unwrap().bits(), b);
        }
        for b in [0u32, 3, 5, 6, 7, 9, 16] {
            assert!(SliceWidth::new(b).is_err());
        }
    }

    #[test]
    fn ranges_match_twos_complement() {
        assert_eq!(BitWidth::INT8.range(Signedness::Signed), (-128, 127));
        assert_eq!(BitWidth::INT8.range(Signedness::Unsigned), (0, 255));
        assert_eq!(BitWidth::INT2.range(Signedness::Signed), (-2, 1));
        assert_eq!(BitWidth::INT2.range(Signedness::Unsigned), (0, 3));
        assert_eq!(BitWidth::new(1).unwrap().range(Signedness::Signed), (-1, 0));
    }

    #[test]
    fn paper_example_4bit_value_into_2bit_slices() {
        // Figure 2a: a 4-bit element is two 2-bit slices,
        // x = 2^2 * bsl_msb + 2^0 * bsl_lsb.
        let sv = SlicedValue::decompose(
            0b1110,
            BitWidth::new(4).unwrap(),
            SliceWidth::BIT2,
            Signedness::Unsigned,
        )
        .unwrap();
        assert_eq!(sv.slices().len(), 2);
        assert_eq!(sv.slices()[0].value, 0b10);
        assert_eq!(sv.slices()[0].shift, 0);
        assert_eq!(sv.slices()[1].value, 0b11);
        assert_eq!(sv.slices()[1].shift, 2);
        assert_eq!(sv.reconstruct(), 0b1110);
    }

    #[test]
    fn signed_top_slice_carries_sign() {
        let sv = SlicedValue::decompose(-1, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed)
            .unwrap();
        // -1 = 0b11111111: slices 3,3,3 unsigned + top slice -1.
        assert_eq!(
            sv.slices().iter().map(|s| s.value).collect::<Vec<_>>(),
            vec![3, 3, 3, -1]
        );
        assert!(sv.slices()[3].signed);
        assert_eq!(sv.reconstruct(), -1);
    }

    #[test]
    fn narrow_width_single_slice_is_identity() {
        for v in -2..=1 {
            let sv =
                SlicedValue::decompose(v, BitWidth::INT2, SliceWidth::BIT2, Signedness::Signed)
                    .unwrap();
            assert_eq!(sv.slices().len(), 1);
            assert_eq!(sv.slices()[0].value, v);
            assert_eq!(sv.reconstruct(), v as i64);
        }
    }

    #[test]
    fn odd_width_pads_to_slice_multiple() {
        // 3-bit signed value with 2-bit slices: 2 slices covering 4 bits.
        for v in -4..=3 {
            let sv = SlicedValue::decompose(
                v,
                BitWidth::new(3).unwrap(),
                SliceWidth::BIT2,
                Signedness::Signed,
            )
            .unwrap();
            assert_eq!(sv.slices().len(), 2);
            assert_eq!(sv.reconstruct(), v as i64, "value {v}");
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert!(matches!(
            SlicedValue::decompose(128, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed),
            Err(CoreError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            SlicedValue::decompose(-1, BitWidth::INT8, SliceWidth::BIT2, Signedness::Unsigned),
            Err(CoreError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn subvector_extracts_slice_lanes() {
        let xs = vec![5, -3, 100, -128];
        let sliced =
            decompose_vector(&xs, BitWidth::INT8, SliceWidth::BIT2, Signedness::Signed).unwrap();
        let lane0 = subvector(&sliced, 0);
        assert_eq!(lane0, vec![5 & 3, (-3i32 & 3), 100 & 3, 0]);
        // Reconstruct each element from its lanes.
        for (i, sv) in sliced.iter().enumerate() {
            assert_eq!(sv.reconstruct(), xs[i] as i64);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(BitWidth::INT8.to_string(), "8b");
        assert_eq!(SliceWidth::BIT2.to_string(), "2b-slice");
        assert_eq!(Signedness::Signed.to_string(), "signed");
    }

    fn arb_width() -> impl Strategy<Value = BitWidth> {
        (1u32..=8).prop_map(|b| BitWidth::new(b).unwrap())
    }

    fn arb_slice_width() -> impl Strategy<Value = SliceWidth> {
        prop_oneof![
            Just(SliceWidth::BIT1),
            Just(SliceWidth::BIT2),
            Just(SliceWidth::BIT4),
            Just(SliceWidth::BIT8),
        ]
    }

    proptest! {
        /// Decompose-then-reconstruct is the identity for every width,
        /// slicing, signedness and in-range value.
        #[test]
        fn roundtrip_identity(
            width in arb_width(),
            sw in arb_slice_width(),
            signed in proptest::bool::ANY,
            raw in proptest::num::i32::ANY,
        ) {
            let signedness = if signed { Signedness::Signed } else { Signedness::Unsigned };
            let (lo, hi) = width.range(signedness);
            let span = (hi - lo + 1) as i64;
            let v = (lo as i64 + (raw as i64 - lo as i64).rem_euclid(span)) as i32;
            let sv = SlicedValue::decompose(v, width, sw, signedness).unwrap();
            prop_assert_eq!(sv.reconstruct(), v as i64);
        }

        /// Every non-top slice is an unsigned s-bit magnitude; the top slice
        /// fits the signed s-bit range when the value is signed.
        #[test]
        fn slice_ranges_hold(
            width in arb_width(),
            sw in arb_slice_width(),
            raw in proptest::num::i32::ANY,
        ) {
            let (lo, hi) = width.range(Signedness::Signed);
            let span = (hi - lo + 1) as i64;
            let v = (lo as i64 + (raw as i64 - lo as i64).rem_euclid(span)) as i32;
            let sv = SlicedValue::decompose(v, width, sw, Signedness::Signed).unwrap();
            let s = sw.bits();
            let n = sv.slices().len();
            for (k, slice) in sv.slices().iter().enumerate() {
                if k == n - 1 {
                    prop_assert!(slice.signed);
                    prop_assert!(slice.value >= -(1 << (s - 1)) && slice.value < (1 << (s - 1)));
                } else {
                    prop_assert!(!slice.signed);
                    prop_assert!(slice.value >= 0 && slice.value < (1 << s));
                }
                prop_assert_eq!(slice.shift, k as u32 * s);
            }
        }

        /// Products decompose: x*w == sum over slice pairs of
        /// (xs_j * ws_k) << (shift_j + shift_k) — the core identity behind
        /// Equation 2.
        #[test]
        fn product_decomposition_identity(
            sw in arb_slice_width(),
            x in -128i32..=127,
            w in -128i32..=127,
        ) {
            let xs = SlicedValue::decompose(x, BitWidth::INT8, sw, Signedness::Signed).unwrap();
            let ws = SlicedValue::decompose(w, BitWidth::INT8, sw, Signedness::Signed).unwrap();
            let mut acc = 0i64;
            for a in xs.slices() {
                for b in ws.slices() {
                    acc += ((a.value as i64) * (b.value as i64)) << (a.shift + b.shift);
                }
            }
            prop_assert_eq!(acc, (x as i64) * (w as i64));
        }
    }
}
