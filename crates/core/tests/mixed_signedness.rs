//! Integration tests for per-operand signedness (unsigned post-ReLU
//! activations × signed weights — the standard quantized-inference layout)
//! and for the zero-slice activity accounting.

use bpvec_core::dotprod::dot_exact;
use bpvec_core::{BitWidth, Cvu, CvuConfig, Signedness};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

#[test]
fn unsigned_activations_signed_weights_match_reference() {
    let cvu = Cvu::new(CvuConfig::paper_default());
    let xs: Vec<i32> = (0..100).map(|i| (i * 13) % 256).collect(); // u8
    let ws: Vec<i32> = (0..100).map(|i| ((i * 7) % 255) - 127).collect(); // i8
    let out = cvu
        .dot_product_mixed(
            &xs,
            &ws,
            BitWidth::INT8,
            BitWidth::INT8,
            Signedness::Unsigned,
            Signedness::Signed,
        )
        .unwrap();
    assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
}

#[test]
fn signed_activations_unsigned_weights_match_reference() {
    let cvu = Cvu::new(CvuConfig::paper_default());
    let xs: Vec<i32> = (0..60).map(|i| (i % 16) - 8).collect();
    let ws: Vec<i32> = (0..60).map(|i| i % 4).collect();
    let out = cvu
        .dot_product_mixed(
            &xs,
            &ws,
            BitWidth::INT4,
            BitWidth::INT2,
            Signedness::Signed,
            Signedness::Unsigned,
        )
        .unwrap();
    assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
}

#[test]
fn signedness_is_validated_per_operand() {
    let cvu = Cvu::new(CvuConfig::paper_default());
    // 200 fits unsigned 8-bit but not signed 8-bit.
    assert!(cvu
        .dot_product_mixed(
            &[200],
            &[-1],
            BitWidth::INT8,
            BitWidth::INT8,
            Signedness::Unsigned,
            Signedness::Signed,
        )
        .is_ok());
    assert!(cvu
        .dot_product_mixed(
            &[200],
            &[-1],
            BitWidth::INT8,
            BitWidth::INT8,
            Signedness::Signed,
            Signedness::Signed,
        )
        .is_err());
}

#[test]
fn zero_vectors_are_fully_ineffectual() {
    let cvu = Cvu::new(CvuConfig::paper_default());
    let out = cvu
        .dot_product(
            &vec![0; 64],
            &vec![0; 64],
            BitWidth::INT8,
            BitWidth::INT8,
            Signedness::Signed,
        )
        .unwrap();
    assert_eq!(out.value, 0);
    assert_eq!(out.stats.effectual_fraction(), 0.0);
}

#[test]
fn sparse_weights_report_low_effectual_fraction() {
    // 2-bit weights where 75% of elements are zero: most slice products are
    // ineffectual — the bit-sparsity opportunity Laconic exploits.
    let cvu = Cvu::new(CvuConfig::paper_default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let xs: Vec<i32> = (0..256).map(|_| rng.gen_range(-128..=127)).collect();
    let ws: Vec<i32> = (0..256)
        .map(|i| if i % 4 == 0 { rng.gen_range(-2..=1) } else { 0 })
        .collect();
    let out = cvu
        .dot_product(&xs, &ws, BitWidth::INT8, BitWidth::INT2, Signedness::Signed)
        .unwrap();
    assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
    assert!(
        out.stats.effectual_fraction() < 0.4,
        "effectual {} should reflect the sparsity",
        out.stats.effectual_fraction()
    );
}

proptest! {
    /// Mixed-signedness execution is bit-true for every width pair.
    #[test]
    fn mixed_signedness_is_bit_true(
        bx in 1u32..=8,
        bw in 1u32..=8,
        sx_signed in proptest::bool::ANY,
        sw_signed in proptest::bool::ANY,
        seed in proptest::num::u64::ANY,
    ) {
        let cvu = Cvu::new(CvuConfig::paper_default());
        let sx = if sx_signed { Signedness::Signed } else { Signedness::Unsigned };
        let sw = if sw_signed { Signedness::Signed } else { Signedness::Unsigned };
        let bwx = BitWidth::new(bx).unwrap();
        let bww = BitWidth::new(bw).unwrap();
        let (xlo, xhi) = bwx.range(sx);
        let (wlo, whi) = bww.range(sw);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..150);
        let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(xlo..=xhi)).collect();
        let ws: Vec<i32> = (0..n).map(|_| rng.gen_range(wlo..=whi)).collect();
        let out = cvu.dot_product_mixed(&xs, &ws, bwx, bww, sx, sw).unwrap();
        prop_assert_eq!(out.value, dot_exact(&xs, &ws).unwrap());
    }

    /// Slice-product accounting is exhaustive: every multiplier firing is
    /// counted, and zero counts never exceed totals.
    #[test]
    fn slice_product_accounting_is_consistent(
        seed in proptest::num::u64::ANY,
        n in 0usize..200,
    ) {
        let cvu = Cvu::new(CvuConfig::paper_default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(-128..=127)).collect();
        let ws: Vec<i32> = (0..n).map(|_| rng.gen_range(-128..=127)).collect();
        let out = cvu
            .dot_product(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)
            .unwrap();
        // 16 slice pairs per element at 8-bit/2-bit slicing.
        prop_assert_eq!(out.stats.slice_products, 16 * n as u64);
        prop_assert!(out.stats.zero_slice_products <= out.stats.slice_products);
    }
}
