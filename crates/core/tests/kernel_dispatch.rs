//! Dispatch-equality tests for the SIMD kernel tiers: every tier the host
//! CPU can run ([`bpvec_core::kernels::available_tiers`]) must return
//! results bit-identical to the scalar reference on the exact lengths
//! where a vectorized kernel can go wrong — empty inputs, single elements,
//! lane−1 / lane / lane+1 word counts, unaligned tails, and the segment
//! boundary of the single-dot SIMD path — for both entry points,
//! [`slice_dot_words_with`] and [`PackedSliceMatrix::dot_with`].

use bpvec_core::dotprod::dot_exact;
use bpvec_core::kernels::{available_tiers, KernelTier};
use bpvec_core::{slice_dot_words_with, BitWidth, PackedSliceMatrix, Signedness, SliceWidth};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const SLICE_WIDTHS: [SliceWidth; 4] = [
    SliceWidth::BIT1,
    SliceWidth::BIT2,
    SliceWidth::BIT4,
    SliceWidth::BIT8,
];

/// Word counts straddling every dispatch boundary: the AVX2 chunk (4
/// words), the AVX-512 chunk (8 words), and the 64-word extraction segment
/// of the single-dot SIMD path — each with its −1/+1 neighbors.
const BOUNDARY_WORDS: [usize; 17] = [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 127, 129];

/// Packs slice values (each in the `s`-bit field domain) into words the way
/// `PackedSliceMatrix` lays planes out: two's complement per field,
/// little-endian, zero tail.
fn pack_fields(vals: &[i32], s: u32) -> Vec<u64> {
    let fpw = (64 / s) as usize;
    let mut words = vec![0u64; vals.len().div_ceil(fpw)];
    for (i, &v) in vals.iter().enumerate() {
        let field = (v as u32 as u64) & ((1 << s) - 1);
        words[i / fpw] |= field << ((i % fpw) as u32 * s);
    }
    words
}

/// The in-domain value range of an `s`-bit slice plane with the given
/// signed-top flag.
fn plane_range(s: u32, signed_top: bool) -> (i32, i32) {
    if signed_top {
        (-(1 << (s - 1)), (1 << (s - 1)) - 1)
    } else {
        (0, (1 << s) - 1)
    }
}

#[test]
fn slice_dot_words_tiers_agree_on_boundary_lengths() {
    let tiers = available_tiers();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51ce_d07b);
    for sw in SLICE_WIDTHS {
        let s = sw.bits();
        let fpw = (64 / s) as usize;
        for words in BOUNDARY_WORDS {
            // Full words, one-element tail past the last full word, and one
            // element short of full — the unaligned-tail cases.
            let lens = [
                words * fpw,
                words * fpw + 1,
                (words * fpw).saturating_sub(1),
            ];
            for n in lens {
                for a_signed in [false, true] {
                    for b_signed in [false, true] {
                        let (alo, ahi) = plane_range(s, a_signed);
                        let (blo, bhi) = plane_range(s, b_signed);
                        let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(alo..=ahi)).collect();
                        let ys: Vec<i32> = (0..n).map(|_| rng.gen_range(blo..=bhi)).collect();
                        let aw = pack_fields(&xs, s);
                        let bw = pack_fields(&ys, s);
                        let want = slice_dot_words_with(
                            KernelTier::Scalar,
                            &aw,
                            &bw,
                            sw,
                            a_signed,
                            b_signed,
                        );
                        let exact: i64 = xs
                            .iter()
                            .zip(&ys)
                            .map(|(&x, &y)| i64::from(x) * i64::from(y))
                            .sum();
                        assert_eq!(want, exact, "{sw} n={n} scalar vs exact");
                        for &tier in &tiers {
                            assert_eq!(
                                slice_dot_words_with(tier, &aw, &bw, sw, a_signed, b_signed),
                                want,
                                "{sw} n={n} signs=({a_signed},{b_signed}) tier {tier}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn packed_dot_tiers_agree_on_boundary_lengths() {
    let tiers = available_tiers();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xd15b_a7c4);
    // Mixed operand widths over a shared slicing, signed and unsigned — the
    // fused multi-plane kernel across the same boundary word counts.
    let combos = [
        (BitWidth::INT8, BitWidth::INT8, SliceWidth::BIT2),
        (BitWidth::INT8, BitWidth::INT2, SliceWidth::BIT2),
        (
            BitWidth::new(3).unwrap(),
            BitWidth::new(5).unwrap(),
            SliceWidth::BIT1,
        ),
        (BitWidth::INT8, BitWidth::INT8, SliceWidth::BIT8),
    ];
    for (ba, bb, sw) in combos {
        let fpw = (64 / sw.bits()) as usize;
        for words in [0usize, 1, 4, 5, 8, 9, 64, 65] {
            for n in [
                words * fpw,
                words * fpw + 1,
                (words * fpw).saturating_sub(1),
            ] {
                for s in [Signedness::Signed, Signedness::Unsigned] {
                    let (alo, ahi) = ba.range(s);
                    let (blo, bhi) = bb.range(s);
                    let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(alo..=ahi)).collect();
                    let ys: Vec<i32> = (0..n).map(|_| rng.gen_range(blo..=bhi)).collect();
                    let px = PackedSliceMatrix::pack(&xs, ba, sw, s).unwrap();
                    let py = PackedSliceMatrix::pack(&ys, bb, sw, s).unwrap();
                    let exact = dot_exact(&xs, &ys).unwrap();
                    assert_eq!(
                        px.dot_with(KernelTier::Scalar, 0, &py, 0),
                        exact,
                        "{ba}x{bb} {sw} {s} n={n} scalar vs exact"
                    );
                    for &tier in &tiers {
                        assert_eq!(
                            px.dot_with(tier, 0, &py, 0),
                            exact,
                            "{ba}x{bb} {sw} {s} n={n} tier {tier}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn blocked_gemm_kernel_matches_per_dot_on_every_tier() {
    // `dot_block_into` (the cache-blocked GEMM building block, panel
    // extraction hoisted) must equal per-element `dot` on each tier,
    // including column counts straddling the L1 panel split.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xb10c_7e57);
    for (m, n, len) in [
        (1usize, 1usize, 7usize),
        (3, 17, 100),
        (5, 40, 33),
        (2, 2, 0),
    ] {
        let a_data: Vec<i32> = (0..m * len).map(|_| rng.gen_range(-128..=127)).collect();
        let b_data: Vec<i32> = (0..n * len).map(|_| rng.gen_range(-128..=127)).collect();
        let a = PackedSliceMatrix::pack_rows(
            &a_data,
            m,
            len,
            BitWidth::INT8,
            SliceWidth::BIT2,
            Signedness::Signed,
        )
        .unwrap();
        let b = PackedSliceMatrix::pack_rows(
            &b_data,
            n,
            len,
            BitWidth::INT8,
            SliceWidth::BIT2,
            Signedness::Signed,
        )
        .unwrap();
        for tier in available_tiers() {
            let mut out = vec![0i64; m * n];
            a.dot_block_into(tier, 0..m, &b, &mut out);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        out[i * n + j],
                        a.dot(i, &b, j),
                        "[{m},{len}]x[{len},{n}] ({i},{j}) tier {tier}"
                    );
                }
            }
        }
    }
}

proptest! {
    /// Random lengths, widths, slicings and signedness: every available
    /// tier equals the scalar tier (and `dot_exact`) on both the per-plane
    /// and the fused kernel.
    #[test]
    fn tiers_agree_on_random_inputs(
        bx in 1u32..=8,
        bw in 1u32..=8,
        sw_bits in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        signed in proptest::bool::ANY,
        seed in proptest::num::u64::ANY,
    ) {
        let bwx = BitWidth::new(bx).unwrap();
        let bww = BitWidth::new(bw).unwrap();
        let sw = SliceWidth::new(sw_bits).unwrap();
        let s = if signed { Signedness::Signed } else { Signedness::Unsigned };
        let (xlo, xhi) = bwx.range(s);
        let (wlo, whi) = bww.range(s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..600);
        let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(xlo..=xhi)).collect();
        let ws: Vec<i32> = (0..n).map(|_| rng.gen_range(wlo..=whi)).collect();
        let px = PackedSliceMatrix::pack(&xs, bwx, sw, s).unwrap();
        let pw = PackedSliceMatrix::pack(&ws, bww, sw, s).unwrap();
        let exact = dot_exact(&xs, &ws).unwrap();
        for tier in available_tiers() {
            prop_assert_eq!(px.dot_with(tier, 0, &pw, 0), exact, "fused tier {}", tier);
        }
    }
}
