//! Property tests pinning the packed bit-plane kernels to the scalar
//! formulations: for every `BitWidth` × `SliceWidth` × `Signedness`
//! combination, [`bpvec_core::dotprod::dot_packed`] (and the underlying
//! [`PackedSliceMatrix`] layout) equals [`dot_exact`] (Equation 1) and
//! [`dot_slice_clustered`] (Equation 4) — exact equality, including the
//! INT8 edge values (−128, −1, 127) that exercise the signed top plane.

use bpvec_core::dotprod::{dot_exact, dot_packed, dot_slice_clustered};
use bpvec_core::{BitWidth, PackedSliceMatrix, Signedness, SliceWidth};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const SLICE_WIDTHS: [SliceWidth; 4] = [
    SliceWidth::BIT1,
    SliceWidth::BIT2,
    SliceWidth::BIT4,
    SliceWidth::BIT8,
];

const SIGNEDNESS: [Signedness; 2] = [Signedness::Signed, Signedness::Unsigned];

/// Every width × slicing × signedness combination agrees on the INT8-style
/// edge vectors (extremes of the declared range, the all-ones pattern, and
/// zero) — deterministic coverage of the values that previously only had
/// scalar-path tests (−128 in particular: the lone value whose top slice
/// saturates negative with all lower slices zero).
#[test]
fn packed_equals_scalar_on_edge_vectors_for_all_combos() {
    for bits in 1..=8u32 {
        let bw = BitWidth::new(bits).unwrap();
        for sw in SLICE_WIDTHS {
            for s in SIGNEDNESS {
                let (lo, hi) = bw.range(s);
                // Edges, their neighbors, zero/±1 where in range.
                let pool: Vec<i32> = [lo, lo + 1, -1, 0, 1, hi - 1, hi]
                    .into_iter()
                    .filter(|v| (lo..=hi).contains(v))
                    .collect();
                // All ordered pairs from the pool, as one long vector each.
                let xs: Vec<i32> = pool
                    .iter()
                    .flat_map(|&a| std::iter::repeat_n(a, pool.len()))
                    .collect();
                let ws: Vec<i32> = pool.iter().cycle().take(xs.len()).copied().collect();
                let exact = dot_exact(&xs, &ws).unwrap();
                let packed = dot_packed(&xs, &ws, bw, bw, sw, s).unwrap();
                assert_eq!(packed, exact, "{bw} {sw} {s} packed vs exact");
                let clustered = dot_slice_clustered(&xs, &ws, bw, bw, sw, sw, s).unwrap();
                assert_eq!(packed, clustered, "{bw} {sw} {s} packed vs clustered");
                // Every dispatch tier this host can run (scalar always, AVX2
                // / AVX-512 where detected) produces the identical result —
                // SIMD == scalar == dot_exact on all 64 combos.
                let px = PackedSliceMatrix::pack(&xs, bw, sw, s).unwrap();
                let pw = PackedSliceMatrix::pack(&ws, bw, sw, s).unwrap();
                for tier in bpvec_core::kernels::available_tiers() {
                    assert_eq!(
                        px.dot_with(tier, 0, &pw, 0),
                        exact,
                        "{bw} {sw} {s} tier {tier}"
                    );
                }
            }
        }
    }
}

/// The INT8 minimum (−128) dotted against every INT8 value, for every
/// slicing — the worst case for two's-complement top-plane handling.
#[test]
fn int8_minus128_against_full_range_all_slicings() {
    let ws: Vec<i32> = (-128..=127).collect();
    let xs = vec![-128i32; ws.len()];
    let exact = dot_exact(&xs, &ws).unwrap();
    for sw in SLICE_WIDTHS {
        assert_eq!(
            dot_packed(
                &xs,
                &ws,
                BitWidth::INT8,
                BitWidth::INT8,
                sw,
                Signedness::Signed
            )
            .unwrap(),
            exact,
            "{sw}"
        );
    }
}

/// Packing is an exact inverse for random in-range matrices (round-trip
/// through `get`), for every combination.
#[test]
fn pack_roundtrips_random_matrices_all_combos() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9d5a_b7f1);
    for bits in 1..=8u32 {
        let bw = BitWidth::new(bits).unwrap();
        for sw in SLICE_WIDTHS {
            for s in SIGNEDNESS {
                let (lo, hi) = bw.range(s);
                let (vecs, len) = (3usize, rng.gen_range(0..100));
                let data: Vec<i32> = (0..vecs * len).map(|_| rng.gen_range(lo..=hi)).collect();
                let p = PackedSliceMatrix::pack_rows(&data, vecs, len, bw, sw, s).unwrap();
                for v in 0..vecs {
                    for e in 0..len {
                        assert_eq!(p.get(v, e), data[v * len + e], "{bw} {sw} {s} [{v},{e}]");
                    }
                }
            }
        }
    }
}

proptest! {
    /// Random vectors: packed == exact == slice-clustered for every
    /// (bx, bw, slice, signedness) combination — the packed layout computes
    /// Equation 4 bit-for-bit. Mixed operand widths share one slice width,
    /// exactly as the hardware packs them.
    #[test]
    fn packed_matches_exact_and_clustered(
        bx in 1u32..=8,
        bw in 1u32..=8,
        sw_bits in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        signed in proptest::bool::ANY,
        seed in proptest::num::u64::ANY,
    ) {
        let bwx = BitWidth::new(bx).unwrap();
        let bww = BitWidth::new(bw).unwrap();
        let sw = SliceWidth::new(sw_bits).unwrap();
        let s = if signed { Signedness::Signed } else { Signedness::Unsigned };
        let (xlo, xhi) = bwx.range(s);
        let (wlo, whi) = bww.range(s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..300);
        let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(xlo..=xhi)).collect();
        let ws: Vec<i32> = (0..n).map(|_| rng.gen_range(wlo..=whi)).collect();
        let exact = dot_exact(&xs, &ws).unwrap();
        prop_assert_eq!(dot_packed(&xs, &ws, bwx, bww, sw, s).unwrap(), exact);
        prop_assert_eq!(
            dot_slice_clustered(&xs, &ws, bwx, bww, sw, sw, s).unwrap(),
            exact
        );
    }

    /// Per-plane narrow dot-products agree with the scalar sub-vector path:
    /// each (j, k) slice pair through `slice_dot_words` equals the narrow
    /// dot-product of the corresponding scalar sub-vectors — the NBVE-level
    /// contract, not just the fully-reduced sum.
    #[test]
    fn slice_planes_match_scalar_subvectors(
        sw_bits in prop_oneof![Just(1u32), Just(2), Just(4)],
        seed in proptest::num::u64::ANY,
    ) {
        use bpvec_core::bitslice::{decompose_vector, subvector};
        let sw = SliceWidth::new(sw_bits).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..120);
        let xs: Vec<i32> = (0..n).map(|_| rng.gen_range(-128..=127)).collect();
        let ws: Vec<i32> = (0..n).map(|_| rng.gen_range(-128..=127)).collect();
        let px = PackedSliceMatrix::pack(&xs, BitWidth::INT8, sw, Signedness::Signed).unwrap();
        let pw = PackedSliceMatrix::pack(&ws, BitWidth::INT8, sw, Signedness::Signed).unwrap();
        let xsl = decompose_vector(&xs, BitWidth::INT8, sw, Signedness::Signed).unwrap();
        let wsl = decompose_vector(&ws, BitWidth::INT8, sw, Signedness::Signed).unwrap();
        for j in 0..px.n_slices() {
            let xsub = subvector(&xsl, j);
            for k in 0..pw.n_slices() {
                let wsub = subvector(&wsl, k);
                let scalar: i64 = xsub
                    .iter()
                    .zip(&wsub)
                    .map(|(&a, &b)| i64::from(a) * i64::from(b))
                    .sum();
                prop_assert_eq!(px.slice_dot(0, j, &pw, 0, k), scalar, "plane ({}, {})", j, k);
            }
        }
    }
}
