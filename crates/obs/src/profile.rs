//! Wall-clock self-profiling — how long the *host* spends computing each
//! sweep cell, as opposed to what the *simulated* clock says.
//!
//! This channel is deliberately separate from [`crate::trace`]: wall-clock
//! readings differ run-to-run, so they must never leak into the
//! deterministic trace (which is diffed byte-for-byte in CI). A
//! [`WallProfiler`] aggregates per-label timings; its snapshot is for
//! humans tuning sweep throughput, not for golden files.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Agg {
    count: u64,
    total_s: f64,
    max_s: f64,
}

/// Aggregated wall-clock timings, one entry per label.
#[derive(Default)]
pub struct WallProfiler {
    inner: Mutex<BTreeMap<String, Agg>>,
}

impl fmt::Debug for WallProfiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("profiler poisoned");
        f.debug_struct("WallProfiler")
            .field("labels", &inner.len())
            .finish()
    }
}

/// One label's aggregated wall-clock timing in a profiler snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// The label passed to [`WallProfiler::record`]/[`WallProfiler::time`].
    pub label: String,
    /// Number of recorded timings.
    pub count: u64,
    /// Sum of recorded durations, seconds.
    pub total_s: f64,
    /// Largest single duration, seconds.
    pub max_s: f64,
}

impl WallProfiler {
    /// An empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration under `label`.
    pub fn record(&self, label: &str, seconds: f64) {
        let mut inner = self.inner.lock().expect("profiler poisoned");
        let agg = inner.entry(label.to_string()).or_default();
        agg.count += 1;
        agg.total_s += seconds;
        agg.max_s = agg.max_s.max(seconds);
    }

    /// Times `f` with a wall-clock [`Instant`] and records the duration
    /// under `label`, returning `f`'s result.
    pub fn time<T>(&self, label: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(label, start.elapsed().as_secs_f64());
        out
    }

    /// A copy of every entry, in label order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<ProfileEntry> {
        self.inner
            .lock()
            .expect("profiler poisoned")
            .iter()
            .map(|(label, agg)| ProfileEntry {
                label: label.clone(),
                count: agg.count,
                total_s: agg.total_s,
                max_s: agg.max_s,
            })
            .collect()
    }

    /// Renders the snapshot as CSV: `label,count,total_s,mean_s,max_s`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,count,total_s,mean_s,max_s\n");
        for e in self.snapshot() {
            let mean = if e.count > 0 {
                e.total_s / e.count as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.label, e.count, e.total_s, mean, e.max_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_per_label() {
        let prof = WallProfiler::new();
        prof.record("cell", 0.5);
        prof.record("cell", 1.5);
        prof.record("build", 0.25);
        let snap = prof.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "build"); // name order
        assert_eq!(snap[1].count, 2);
        assert!((snap[1].total_s - 2.0).abs() < 1e-12);
        assert!((snap[1].max_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let prof = WallProfiler::new();
        let out = prof.time("work", || 40 + 2);
        assert_eq!(out, 42);
        let snap = prof.snapshot();
        assert_eq!(snap[0].count, 1);
        assert!(snap[0].total_s >= 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let prof = WallProfiler::new();
        prof.record("a", 1.0);
        let csv = prof.to_csv();
        assert!(csv.starts_with("label,count,total_s,mean_s,max_s\n"));
        assert!(csv.contains("a,1,1,1,1\n"));
    }
}
