//! # `bpvec-obs` — deterministic tracing and metrics for the simulators
//!
//! End-of-run aggregates (`ServingMetrics`, `Report` cells) say *what*
//! happened; they cannot say *when* or *why*. This crate is the
//! observability layer the serving stack records into: structured trace
//! events stamped with **deterministic sim-time**, a thread-safe metrics
//! registry, and exporters for the Chrome trace-event format (loadable in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`) and
//! JSON/CSV metric snapshots.
//!
//! ```text
//!  event loop ──▶ TraceSink ──▶ MemorySink ──▶ chrome::to_chrome_json ──▶ Perfetto
//!  (sim-time)    (trait; the              (per-event record, monotone seq)
//!                 NullSink default
//!                 costs one branch)
//!  cost model ──▶ MetricsRegistry ──▶ MetricsSnapshot ──▶ JSON / CSV
//!  kernels        (counters/gauges/log-histograms, BTreeMap name order)
//! ```
//!
//! Three properties shape the design:
//!
//! * **Free when disabled.** [`TraceSink`]'s default methods are no-ops
//!   and `enabled()` defaults to `false`; instrumented code normalizes a
//!   disabled sink to `None` once at entry, so the uninstrumented hot path
//!   is unchanged apart from one `Option` branch (the `obs_overhead`
//!   criterion bench pins this below 3%).
//! * **Deterministic.** Events carry sim-time (the serving clock — never
//!   wall-clock) plus a sink-assigned monotone sequence number, and the
//!   exporters hand-format their output with fixed field order, so two
//!   identically-seeded runs emit byte-identical traces (diffed in CI).
//!   Wall-clock self-profiling has its own channel ([`WallProfiler`]) that
//!   is deliberately excluded from the trace.
//! * **Zero dependencies beyond `serde`.** The Chrome exporter and the
//!   snapshot renderers are hand-rolled; nothing here pulls in a runtime.
//!
//! Modules:
//!
//! * [`trace`] — the event model ([`TraceEvent`], [`Phase`], [`ArgValue`]),
//!   the [`TraceSink`] trait with [`NullSink`]/[`MemorySink`], and
//!   [`validate_spans`] (every `B` closed by a matching `E`, no negative
//!   durations);
//! * [`chrome`] — [`to_chrome_json`]: byte-deterministic Chrome
//!   trace-event JSON, one event per line, one `pid` track per replica;
//! * [`metrics`] — [`MetricsRegistry`] of counters/gauges/[`LogHistogram`]s
//!   (the log-spaced binning idiom of serve's `LatencyHistogram`),
//!   snapshotted in name order to JSON/CSV;
//! * [`profile`] — [`WallProfiler`], the wall-clock channel for sweep
//!   self-timing.
//!
//! ## Recording and exporting a trace
//!
//! ```
//! use bpvec_obs::{MemorySink, TraceEvent, TraceSink, validate_spans};
//!
//! let sink = MemorySink::new();
//! sink.record(TraceEvent::process_name(0, "replica0"));
//! sink.record(TraceEvent::begin("exec", 0.001, 0, 0).with_arg("batch", 4u64));
//! sink.record(TraceEvent::end("exec", 0.003, 0, 0));
//!
//! let events = sink.events();
//! validate_spans(&events).unwrap();
//! let json = sink.to_chrome_json(); // load this file in Perfetto
//! assert!(json.contains("\"ph\":\"B\""));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use chrome::to_chrome_json;
pub use metrics::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, LogHistogram, MetricsRegistry,
    MetricsSnapshot,
};
pub use profile::{ProfileEntry, WallProfiler};
pub use trace::{validate_spans, ArgValue, MemorySink, NullSink, Phase, TraceEvent, TraceSink};
