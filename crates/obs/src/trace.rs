//! The event model and sinks: [`TraceEvent`], [`TraceSink`], and the two
//! stock sinks ([`NullSink`], [`MemorySink`]).
//!
//! Events are stamped with **sim-time** — the deterministic clock of
//! whatever simulation emits them — never wall-clock. The sink assigns
//! each recorded event a monotone sequence number under its own lock, so a
//! single-threaded emitter produces a byte-identical event stream on every
//! run. (Multi-threaded emitters that need determinism buffer into one
//! [`MemorySink`] per thread and forward in a fixed order; that is what
//! `ServingScenario` does across its rayon grid.)

use std::fmt;
use std::sync::Mutex;

/// Chrome trace-event phase of a [`TraceEvent`].
///
/// The variants map onto the trace-event format's single-character `ph`
/// codes (see [`Phase::code`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span start (`B`): opens a nested slice on its `(pid, tid)` track.
    Begin,
    /// Span end (`E`): closes the innermost open slice on its track.
    End,
    /// Instant event (`i`): a zero-duration marker.
    Instant,
    /// Complete event (`X`): a self-contained span carrying its duration.
    Complete,
    /// Counter sample (`C`): the `args` values plot as counter series.
    Counter,
    /// Metadata (`M`): names a process/thread track; timestamp ignored.
    Meta,
}

impl Phase {
    /// The trace-event format's `ph` character for this phase.
    #[must_use]
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
            Phase::Complete => 'X',
            Phase::Counter => 'C',
            Phase::Meta => 'M',
        }
    }
}

/// A typed argument value attached to a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::I64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One structured trace event, stamped with deterministic sim-time.
///
/// `ts_s` is in **simulated seconds** (the serving clock, or a modeled
/// latency — never wall-clock). `seq` is assigned by the sink at record
/// time and breaks ties between events sharing a timestamp, so a sorted
/// event stream has exactly one order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (e.g. `"exec"`, `"rung_switch"`).
    pub name: String,
    /// Category tag, used by trace viewers to filter (e.g. `"serve"`).
    pub cat: String,
    /// Phase: span begin/end, instant, complete, counter, or metadata.
    pub ph: Phase,
    /// Sim-time timestamp, seconds.
    pub ts_s: f64,
    /// Duration in seconds; present on [`Phase::Complete`] events only.
    pub dur_s: Option<f64>,
    /// Process id — one track group per replica (or per sweep column).
    pub pid: u32,
    /// Thread id — a lane within the `pid` track group.
    pub tid: u32,
    /// Monotone sequence number assigned by the sink; 0 until recorded.
    pub seq: u64,
    /// Typed key/value arguments, emitted in insertion order.
    pub args: Vec<(String, ArgValue)>,
}

impl TraceEvent {
    /// A new event with the given phase; no duration, no args, seq 0.
    #[must_use]
    pub fn new(ph: Phase, name: &str, ts_s: f64, pid: u32, tid: u32) -> Self {
        TraceEvent {
            name: name.to_string(),
            cat: "bpvec".to_string(),
            ph,
            ts_s,
            dur_s: None,
            pid,
            tid,
            seq: 0,
            args: Vec::new(),
        }
    }

    /// A span-begin (`B`) event.
    #[must_use]
    pub fn begin(name: &str, ts_s: f64, pid: u32, tid: u32) -> Self {
        Self::new(Phase::Begin, name, ts_s, pid, tid)
    }

    /// A span-end (`E`) event.
    #[must_use]
    pub fn end(name: &str, ts_s: f64, pid: u32, tid: u32) -> Self {
        Self::new(Phase::End, name, ts_s, pid, tid)
    }

    /// An instant (`i`) event.
    #[must_use]
    pub fn instant(name: &str, ts_s: f64, pid: u32, tid: u32) -> Self {
        Self::new(Phase::Instant, name, ts_s, pid, tid)
    }

    /// A complete (`X`) event spanning `[ts_s, ts_s + dur_s]`.
    #[must_use]
    pub fn complete(name: &str, ts_s: f64, dur_s: f64, pid: u32, tid: u32) -> Self {
        let mut e = Self::new(Phase::Complete, name, ts_s, pid, tid);
        e.dur_s = Some(dur_s);
        e
    }

    /// A counter (`C`) sample: the viewer plots `value` as series `name`.
    #[must_use]
    pub fn counter(name: &str, ts_s: f64, pid: u32, tid: u32, value: f64) -> Self {
        Self::new(Phase::Counter, name, ts_s, pid, tid).with_arg(name, value)
    }

    /// A `process_name` metadata event labelling the `pid` track group.
    #[must_use]
    pub fn process_name(pid: u32, name: &str) -> Self {
        TraceEvent::new(Phase::Meta, "process_name", 0.0, pid, 0).with_arg("name", name)
    }

    /// A `thread_name` metadata event labelling one `(pid, tid)` lane.
    #[must_use]
    pub fn thread_name(pid: u32, tid: u32, name: &str) -> Self {
        TraceEvent::new(Phase::Meta, "thread_name", 0.0, pid, tid).with_arg("name", name)
    }

    /// Sets the category tag (builder style).
    #[must_use]
    pub fn with_cat(mut self, cat: &str) -> Self {
        cat.clone_into(&mut self.cat);
        self
    }

    /// Appends one typed argument (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: &str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key.to_string(), value.into()));
        self
    }
}

/// Where instrumented code sends its events.
///
/// The default methods make the disabled case free: a sink that keeps the
/// default `enabled() == false` never has events constructed for it, and
/// `record` is a no-op. Instrumented call sites hold an
/// `Option<&dyn TraceSink>` normalized to `None` when the sink reports
/// disabled, so the hot path pays one branch.
pub trait TraceSink: Send + Sync {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event. The sink assigns the event's `seq`.
    fn record(&self, event: TraceEvent) {
        let _ = event;
    }
}

impl fmt::Debug for dyn TraceSink + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dyn TraceSink {{ enabled: {} }}", self.enabled())
    }
}

/// The no-op sink: disabled, records nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {}

struct MemoryInner {
    events: Vec<TraceEvent>,
    seq: u64,
}

/// A sink that buffers events in memory, assigning each a monotone
/// sequence number at record time.
pub struct MemorySink {
    inner: Mutex<MemoryInner>,
}

impl fmt::Debug for MemorySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySink")
            .field("events", &self.len())
            .finish()
    }
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink {
            inner: Mutex::new(MemoryInner {
                events: Vec::new(),
                seq: 0,
            }),
        }
    }

    /// A copy of the recorded events, in sequence order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .expect("trace sink poisoned")
            .events
            .clone()
    }

    /// Drains the recorded events, leaving the sink empty (the sequence
    /// counter keeps counting, so later events still sort after).
    #[must_use]
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.lock().expect("trace sink poisoned").events)
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace sink poisoned").events.len()
    }

    /// Whether no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a batch of already-ordered events, re-stamping each with
    /// this sink's sequence counter. Used to forward per-cell buffers into
    /// a shared sink in a deterministic order.
    pub fn extend(&self, events: impl IntoIterator<Item = TraceEvent>) {
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        for mut e in events {
            e.seq = inner.seq;
            inner.seq += 1;
            inner.events.push(e);
        }
    }

    /// Renders the buffered events as Chrome trace-event JSON
    /// (see [`crate::chrome::to_chrome_json`]).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(&self.inner.lock().expect("trace sink poisoned").events)
    }
}

impl TraceSink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, mut event: TraceEvent) {
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        event.seq = inner.seq;
        inner.seq += 1;
        inner.events.push(event);
    }
}

/// Checks span-nesting discipline over an event stream.
///
/// Per `(pid, tid)` lane: every [`Phase::End`] must close a matching open
/// [`Phase::Begin`] with the same name and a non-negative duration, and
/// every lane's stack must be empty at the end. [`Phase::Complete`] events
/// must carry a non-negative `dur_s`. Returns a description of the first
/// violation found.
pub fn validate_spans(events: &[TraceEvent]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut stacks: HashMap<(u32, u32), Vec<(&str, f64)>> = HashMap::new();
    for e in events {
        let lane = (e.pid, e.tid);
        match e.ph {
            Phase::Begin => stacks.entry(lane).or_default().push((&e.name, e.ts_s)),
            Phase::End => {
                let Some((name, ts)) = stacks.entry(lane).or_default().pop() else {
                    return Err(format!(
                        "E \"{}\" at {}s on pid {} tid {} closes no open span",
                        e.name, e.ts_s, e.pid, e.tid
                    ));
                };
                if name != e.name {
                    return Err(format!(
                        "E \"{}\" at {}s on pid {} tid {} closes B \"{name}\"",
                        e.name, e.ts_s, e.pid, e.tid
                    ));
                }
                if e.ts_s < ts {
                    return Err(format!(
                        "span \"{name}\" on pid {} tid {} has negative duration ({ts}s .. {}s)",
                        e.pid, e.tid, e.ts_s
                    ));
                }
            }
            Phase::Complete => match e.dur_s {
                Some(d) if d >= 0.0 => {}
                Some(d) => {
                    return Err(format!(
                        "X \"{}\" at {}s has negative duration {d}s",
                        e.name, e.ts_s
                    ));
                }
                None => {
                    return Err(format!("X \"{}\" at {}s has no duration", e.name, e.ts_s));
                }
            },
            Phase::Instant | Phase::Counter | Phase::Meta => {}
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some((name, ts)) = stack.last() {
            return Err(format!(
                "B \"{name}\" at {ts}s on pid {pid} tid {tid} is never closed"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(TraceEvent::instant("x", 0.0, 0, 0)); // no-op
    }

    #[test]
    fn memory_sink_assigns_monotone_seq() {
        let sink = MemorySink::new();
        for i in 0..5 {
            sink.record(TraceEvent::instant("tick", f64::from(i), 0, 0));
        }
        let events = sink.events();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn extend_restamps_sequence_numbers() {
        let sink = MemorySink::new();
        sink.record(TraceEvent::instant("a", 0.0, 0, 0));
        let mut stale = TraceEvent::instant("b", 1.0, 0, 0);
        stale.seq = 999;
        sink.extend([stale]);
        assert_eq!(sink.events()[1].seq, 1);
    }

    #[test]
    fn well_formed_spans_validate() {
        let events = vec![
            TraceEvent::begin("outer", 0.0, 0, 0),
            TraceEvent::begin("inner", 1.0, 0, 0),
            TraceEvent::end("inner", 2.0, 0, 0),
            TraceEvent::end("outer", 3.0, 0, 0),
            TraceEvent::complete("x", 1.0, 0.5, 0, 1),
        ];
        assert!(validate_spans(&events).is_ok());
    }

    #[test]
    fn unmatched_end_is_rejected() {
        let events = vec![TraceEvent::end("orphan", 1.0, 0, 0)];
        assert!(validate_spans(&events).unwrap_err().contains("orphan"));
    }

    #[test]
    fn unclosed_begin_is_rejected() {
        let events = vec![TraceEvent::begin("open", 1.0, 0, 0)];
        assert!(validate_spans(&events)
            .unwrap_err()
            .contains("never closed"));
    }

    #[test]
    fn negative_duration_is_rejected() {
        let events = vec![
            TraceEvent::begin("back", 2.0, 0, 0),
            TraceEvent::end("back", 1.0, 0, 0),
        ];
        assert!(validate_spans(&events)
            .unwrap_err()
            .contains("negative duration"));
        let x = vec![TraceEvent::complete("x", 0.0, -1.0, 0, 0)];
        assert!(validate_spans(&x)
            .unwrap_err()
            .contains("negative duration"));
    }

    #[test]
    fn mismatched_names_are_rejected() {
        let events = vec![
            TraceEvent::begin("a", 0.0, 0, 0),
            TraceEvent::end("b", 1.0, 0, 0),
        ];
        assert!(validate_spans(&events).unwrap_err().contains("closes B"));
    }

    #[test]
    fn lanes_are_independent() {
        // A begin on one lane is not closable from another.
        let events = vec![
            TraceEvent::begin("a", 0.0, 0, 0),
            TraceEvent::end("a", 1.0, 0, 1),
        ];
        assert!(validate_spans(&events).is_err());
    }
}
