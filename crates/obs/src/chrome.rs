//! Chrome trace-event JSON export — the format Perfetto and
//! `chrome://tracing` load directly.
//!
//! The output is hand-formatted (no serializer indirection) so that it is
//! **byte-deterministic**: field order is fixed, timestamps are rendered
//! with Rust's shortest-roundtrip `f64` formatting, and events appear in
//! the order given (sinks record them in sim-time/sequence order already).
//! Timestamps convert from sim-seconds to the format's microseconds.

use crate::trace::{ArgValue, Phase, TraceEvent};

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders one JSON number. `f64` Display is shortest-roundtrip and
/// deterministic, but produces bare `NaN`/`inf` tokens, which are not
/// JSON — clamp those to `null` (they never arise from sim-time stamps).
fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_arg_value(v: &ArgValue, out: &mut String) {
    match v {
        ArgValue::U64(n) => out.push_str(&format!("{n}")),
        ArgValue::I64(n) => out.push_str(&format!("{n}")),
        ArgValue::F64(n) => push_f64(*n, out),
        ArgValue::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// Renders one event as a single-line JSON object.
fn push_event(e: &TraceEvent, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape_json(&e.name, out);
    out.push_str("\",\"cat\":\"");
    escape_json(&e.cat, out);
    out.push_str("\",\"ph\":\"");
    out.push(e.ph.code());
    out.push_str("\",\"ts\":");
    push_f64(e.ts_s * 1e6, out);
    if let Some(dur_s) = e.dur_s {
        out.push_str(",\"dur\":");
        push_f64(dur_s * 1e6, out);
    }
    out.push_str(",\"pid\":");
    out.push_str(&format!("{}", e.pid));
    out.push_str(",\"tid\":");
    out.push_str(&format!("{}", e.tid));
    if e.ph == Phase::Instant {
        // Thread-scoped instant: drawn as a tick on its own lane.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    for (key, value) in &e.args {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_json(key, out);
        out.push_str("\":");
        push_arg_value(value, out);
    }
    if !first {
        out.push(',');
    }
    // The sink-assigned sequence number rides along as an ordinary arg:
    // viewers ignore it, and it keeps equal-timestamp events ordered when
    // a trace is re-sorted by external tooling.
    out.push_str(&format!("\"seq\":{}", e.seq));
    out.push_str("}}");
}

/// Renders an event stream as a Chrome trace-event JSON document.
///
/// One event per line inside `"traceEvents"`, so two traces diff cleanly
/// line-by-line. Load the output in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing` as-is.
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        push_event(e, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn renders_required_fields() {
        let events = vec![
            TraceEvent::process_name(0, "replica0"),
            TraceEvent::begin("exec", 0.001, 0, 0).with_arg("batch", 4u64),
            TraceEvent::end("exec", 0.002, 0, 0),
            TraceEvent::instant("arrive", 0.0005, 0, 1).with_arg("class", "alexnet"),
            TraceEvent::counter("queue_depth", 0.0005, 0, 0, 3.0),
            TraceEvent::complete("queue", 0.0005, 0.0005, 0, 1),
        ];
        let json = to_chrome_json(&events);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ts\":1000")); // 0.001 s -> 1000 us
        assert!(json.contains("\"dur\":500"));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"name\":\"replica0\""));
    }

    #[test]
    fn output_parses_as_json() {
        let events = vec![
            TraceEvent::instant("weird \"name\"\n", 0.5, 1, 2).with_arg("path", "a\\b"),
            TraceEvent::counter("q", 1.0, 0, 0, 2.5),
        ];
        let json = to_chrome_json(&events);
        // `from_str` parses the full document before extracting fields, so
        // a successful probe means the whole output is valid JSON.
        #[derive(serde::Deserialize)]
        #[allow(non_snake_case)]
        struct Probe {
            displayTimeUnit: String,
        }
        let probe: Probe = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(probe.displayTimeUnit, "ms");
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn identical_streams_render_byte_identically() {
        let make = || {
            vec![
                TraceEvent::begin("exec", 0.25, 0, 0).with_arg("svc", 0.125f64),
                TraceEvent::end("exec", 0.375, 0, 0),
            ]
        };
        assert_eq!(to_chrome_json(&make()), to_chrome_json(&make()));
    }
}
