//! A thread-safe registry of named counters, gauges, and log-spaced
//! histograms, snapshotted to deterministic JSON/CSV.
//!
//! The registry is the *aggregate* side of observability (the trace is the
//! per-event side): cost-model hit/miss counters, packed-kernel MAC
//! counts, request totals. Metrics live in a `BTreeMap`, so snapshots
//! enumerate in name order and render byte-identically across runs.
//!
//! [`LogHistogram`] reuses the binning idiom of `bpvec-serve`'s
//! `LatencyHistogram`: `bins` doubling buckets starting at `base`, with
//! the first and last bins absorbing underflow and overflow.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// A log-spaced histogram: bin `i` counts observations in
/// `[base * 2^i, base * 2^(i+1))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Lower bound of bin 0; each bin doubles.
    pub base: f64,
    /// Sample count per bin.
    pub counts: Vec<u64>,
}

impl LogHistogram {
    /// Default bin count (with the default 1 µs base: 1 µs to ≈134 s).
    pub const DEFAULT_BINS: usize = 28;
    /// Default base (1 µs) — matches `bpvec-serve`'s `LatencyHistogram`.
    pub const DEFAULT_BASE: f64 = 1e-6;

    /// An empty histogram with the given base and bin count.
    ///
    /// # Panics
    /// If `base` is not strictly positive or `bins` is zero.
    #[must_use]
    pub fn new(base: f64, bins: usize) -> Self {
        assert!(base > 0.0, "histogram base must be positive, got {base}");
        assert!(bins > 0, "histogram needs at least one bin");
        LogHistogram {
            base,
            counts: vec![0; bins],
        }
    }

    /// An empty histogram with the serve-latency defaults (1 µs doubling).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(Self::DEFAULT_BASE, Self::DEFAULT_BINS)
    }

    /// Records one observation (underflow and overflow clamp into the
    /// first and last bins).
    pub fn observe(&mut self, value: f64) {
        let bin = if value < self.base {
            0
        } else {
            ((value / self.base).log2().floor() as usize).min(self.counts.len() - 1)
        };
        self.counts[bin] += 1;
    }

    /// Total samples across all bins.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower bound of each bin.
    #[must_use]
    pub fn lower_bounds(&self) -> Vec<f64> {
        (0..self.counts.len())
            .map(|i| self.base * (1u64 << i.min(63)) as f64)
            .collect()
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(LogHistogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A thread-safe registry of named metrics.
///
/// Names are free-form dotted paths (`"cost.hits"`,
/// `"serve.requests_completed"`). A name is bound to one metric kind on
/// first use; mixing kinds under one name panics (it is a programming
/// error, not an input error).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        f.debug_struct("MetricsRegistry")
            .field("metrics", &inner.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the named gauge to `value` (created on first use).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.entry(name.to_string()).or_insert(Metric::Gauge(0.0)) {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Records one observation into the named histogram, creating it with
    /// the serve-latency defaults (1 µs doubling, 28 bins) on first use.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(LogHistogram::with_defaults()))
        {
            Metric::Histogram(h) => h.observe(value),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Pre-registers a histogram with a custom base/bin count (for scales
    /// where 1 µs doubling is wrong, e.g. per-layer MAC counts).
    ///
    /// # Panics
    /// If the name is already bound to a different metric kind.
    pub fn register_histogram(&self, name: &str, base: f64, bins: usize) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(LogHistogram::new(base, bins)))
        {
            Metric::Histogram(_) => {}
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Reads the named counter (`None` if absent or a different kind).
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self
            .inner
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
        {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads the named gauge (`None` if absent or a different kind).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self
            .inner
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
        {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// A point-in-time copy of every metric, in name order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(v) => counters.push(CounterSnapshot {
                    name: name.clone(),
                    value: *v,
                }),
                Metric::Gauge(v) => gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    value: *v,
                }),
                Metric::Histogram(h) => histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    base: h.base,
                    counts: h.counts.clone(),
                }),
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Current count.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Lower bound of bin 0; each bin doubles.
    pub base: f64,
    /// Sample count per bin.
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total samples across all bins.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], in name order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, by name.
    pub histograms: Vec<HistogramSnapshot>,
}

fn push_json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as deterministic JSON (name order, fixed field
    /// order, shortest-roundtrip float formatting).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"value\":{}}}",
                c.name, c.value
            ));
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{}\",\"value\":", g.name));
            push_json_f64(g.value, &mut out);
            out.push('}');
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{}\",\"base\":", h.name));
            push_json_f64(h.base, &mut out);
            out.push_str(",\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{c}"));
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// Renders the snapshot as CSV: `kind,name,value` rows, where a
    /// histogram's value is its total sample count.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for c in &self.counters {
            out.push_str(&format!("counter,{},{}\n", c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("gauge,{},{}\n", g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!("histogram,{},{}\n", h.name, h.total()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter_add("cost.hits", 3);
        reg.counter_add("cost.hits", 4);
        assert_eq!(reg.counter("cost.hits"), Some(7));
        assert_eq!(reg.counter("missing"), None);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("queue_depth", 3.0);
        reg.gauge_set("queue_depth", 1.5);
        assert_eq!(reg.gauge("queue_depth"), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter_add("x", 1);
        reg.gauge_set("x", 1.0);
    }

    #[test]
    fn histogram_bins_match_serve_idiom() {
        // Same binning as serve's LatencyHistogram: log2(v / 1 µs), clamped.
        let mut h = LogHistogram::with_defaults();
        h.observe(0.5e-6); // underflow -> bin 0
        h.observe(1e-6); // bin 0
        h.observe(3e-6); // bin 1 ([2 µs, 4 µs))
        h.observe(1e9); // overflow -> last bin
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[LogHistogram::DEFAULT_BINS - 1], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn custom_base_histograms() {
        let reg = MetricsRegistry::new();
        reg.register_histogram("macs", 1.0, 40);
        reg.observe("macs", 1e9);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].counts.len(), 40);
        assert_eq!(snap.histograms[0].total(), 1);
    }

    #[test]
    fn snapshot_is_name_ordered_and_deterministic() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter_add("b", 2);
            reg.counter_add("a", 1);
            reg.gauge_set("g", 0.25);
            reg.observe("h", 1e-3);
            reg.snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        assert_eq!(s1.counters[0].name, "a");
        assert_eq!(s1.counters[1].name, "b");
        assert_eq!(s1.to_json(), s2.to_json());
        assert_eq!(s1.to_csv(), s2.to_csv());
    }

    #[test]
    fn json_snapshot_parses_and_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter_add("hits", 42);
        reg.gauge_set("rate", 0.9375);
        reg.observe("lat", 1e-3);
        let snap = reg.snapshot();
        let parsed: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        // And the derive-side serializer agrees with the hand renderer's data.
        let via_derive: MetricsSnapshot =
            serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
        assert_eq!(via_derive, snap);
    }

    #[test]
    fn csv_has_one_row_per_metric() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 1);
        reg.gauge_set("g", 2.0);
        reg.observe("h", 3.0);
        let csv = reg.snapshot().to_csv();
        assert_eq!(csv.lines().count(), 4); // header + 3 metrics
        assert!(csv.starts_with("kind,name,value\n"));
    }
}
