//! Technology profile: primitive-cell costs at 45 nm / 500 MHz.
//!
//! Unit values are expressed in µm² (area) and µW of dynamic power at
//! 500 MHz with nominal switching activity. Absolute values matter less than
//! *ratios* — every result the paper reports from this model (Figure 4) is
//! normalized to a conventional 8-bit MAC built from the same cells.
//!
//! The defaults are calibrated against public 45 nm standard-cell data
//! (NanGate 45 nm open cell library order-of-magnitude figures) plus two
//! behavioural factors a plain gate count misses:
//!
//! * `glitch_coef` — multiplier arrays glitch more as operands widen, so a
//!   wide multiplier's *power* grows faster than its area (power-only);
//! * `adder_activity` — adder/compressor trees toggle more than the nominal
//!   cell activity (power-only).
//!
//! The factors are fitted so the normalized Figure 4 series land inside the
//! paper's reported bands (see `dse::tests` and EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

/// Primitive cell costs for one technology corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyProfile {
    /// Area of a full adder cell, µm².
    pub fa_area: f64,
    /// Dynamic power of a full adder at 500 MHz, µW.
    pub fa_power: f64,
    /// Area of a half adder cell, µm².
    pub ha_area: f64,
    /// Dynamic power of a half adder, µW.
    pub ha_power: f64,
    /// Area of a 2-input AND gate, µm².
    pub and_area: f64,
    /// Dynamic power of a 2-input AND gate, µW.
    pub and_power: f64,
    /// Area of one flip-flop bit, µm².
    pub ff_area: f64,
    /// Power of one flip-flop bit (clock + data), µW.
    pub ff_power: f64,
    /// Area of a 2:1 mux bit (shift-select element), µm².
    pub mux_area: f64,
    /// Power of a 2:1 mux bit, µW.
    pub mux_power: f64,
    /// Multiplicative overhead applied to multipliers wider than 1×1 for
    /// signed (Baugh–Wooley / modified-Booth) handling.
    pub sign_overhead: f64,
    /// Multiplicative overhead for wiring/placement inefficiency of wide
    /// aggregation structures (applied to adder trees).
    pub wiring_overhead: f64,
    /// Power-only glitch growth per multiplier operand bit beyond 4 total:
    /// `power *= 1 + glitch_coef * max(0, n + m - 4)`.
    pub glitch_coef: f64,
    /// Power-only switching-activity factor of adder trees and accumulators.
    pub adder_activity: f64,
}

impl TechnologyProfile {
    /// The calibrated 45 nm / 500 MHz profile used throughout the
    /// reproduction.
    #[must_use]
    pub fn nm45() -> Self {
        TechnologyProfile {
            fa_area: 4.3,
            fa_power: 1.25,
            ha_area: 2.15,
            ha_power: 0.63,
            and_area: 1.1,
            and_power: 0.33,
            ff_area: 5.6,
            ff_power: 0.72,
            mux_area: 1.8,
            mux_power: 0.30,
            sign_overhead: 1.18,
            wiring_overhead: 1.12,
            glitch_coef: 0.085,
            adder_activity: 1.45,
        }
    }
}

impl Default for TechnologyProfile {
    fn default() -> Self {
        Self::nm45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nm45() {
        assert_eq!(TechnologyProfile::default(), TechnologyProfile::nm45());
    }

    #[test]
    fn all_costs_positive() {
        let t = TechnologyProfile::nm45();
        for v in [
            t.fa_area,
            t.fa_power,
            t.ha_area,
            t.ha_power,
            t.and_area,
            t.and_power,
            t.ff_area,
            t.ff_power,
            t.mux_area,
            t.mux_power,
            t.sign_overhead,
            t.wiring_overhead,
            t.glitch_coef,
            t.adder_activity,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn half_adder_is_cheaper_than_full_adder() {
        let t = TechnologyProfile::nm45();
        assert!(t.ha_area < t.fa_area);
        assert!(t.ha_power < t.fa_power);
    }

    #[test]
    fn overheads_are_modest_multipliers() {
        let t = TechnologyProfile::nm45();
        assert!(t.sign_overhead >= 1.0 && t.sign_overhead < 2.0);
        assert!(t.wiring_overhead >= 1.0 && t.wiring_overhead < 2.0);
        assert!(t.adder_activity >= 1.0 && t.adder_activity < 2.0);
    }
}
