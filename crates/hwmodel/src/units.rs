//! Costs of complete compute units: conventional MAC, NBVE, CVU, and the
//! BitFusion-style fusion unit.

use serde::{Deserialize, Serialize};

use crate::components::{
    adder, barrel_shifter, compressor_tree, multiplier, register, shifted_adder_tree, ComponentCost,
};
use crate::tech::TechnologyProfile;

/// Core clock of every evaluated ASIC design (paper Table II).
pub const CLOCK_MHZ: f64 = 500.0;

/// Per-category cost breakdown matching Figure 4's stacking:
/// multiplication, addition, shifting, registering.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Narrow/wide multiplier cells.
    pub multiplication: ComponentCost,
    /// Private and global adder trees plus accumulator adders.
    pub addition: ComponentCost,
    /// Significance-alignment shifters.
    pub shifting: ComponentCost,
    /// Pipeline and accumulator registers.
    pub registering: ComponentCost,
}

impl CostBreakdown {
    /// Sum of all categories.
    #[must_use]
    pub fn total(&self) -> ComponentCost {
        self.multiplication + self.addition + self.shifting + self.registering
    }

    /// Scales every category (e.g. to express per-MAC costs).
    #[must_use]
    pub fn scale(&self, factor: f64) -> Self {
        CostBreakdown {
            multiplication: self.multiplication.scale(factor),
            addition: self.addition.scale(factor),
            shifting: self.shifting.scale(factor),
            registering: self.registering.scale(factor),
        }
    }

    /// Component-wise sum with another breakdown.
    #[must_use]
    pub fn merge(&self, other: &CostBreakdown) -> Self {
        CostBreakdown {
            multiplication: self.multiplication + other.multiplication,
            addition: self.addition + other.addition,
            shifting: self.shifting + other.shifting,
            registering: self.registering + other.registering,
        }
    }
}

/// The cost of one complete compute unit together with its per-cycle
/// throughput in 8-bit MAC equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitCost {
    /// Cost breakdown for the whole unit.
    pub breakdown: CostBreakdown,
    /// 8b×8b MAC-equivalent operations completed per cycle.
    pub macs_per_cycle: f64,
}

impl UnitCost {
    /// Total (area, power) of the unit.
    #[must_use]
    pub fn total(&self) -> ComponentCost {
        self.breakdown.total()
    }

    /// Cost breakdown normalized per MAC-equivalent operation.
    #[must_use]
    pub fn per_mac(&self) -> CostBreakdown {
        self.breakdown.scale(1.0 / self.macs_per_cycle)
    }

    /// Energy per MAC-equivalent operation in picojoules at
    /// [`CLOCK_MHZ`]: `P/f` divided by ops per cycle.
    #[must_use]
    pub fn energy_per_mac_pj(&self) -> f64 {
        // µW / MHz = pJ per cycle.
        (self.total().power / CLOCK_MHZ) / self.macs_per_cycle
    }
}

/// A conventional, self-sufficient digital 8-bit MAC unit — the
/// normalization baseline of Figure 4 and the compute unit of the TPU-like
/// baseline accelerator.
///
/// Structure: an 8×8 signed multiplier, a 24-bit accumulation adder, a
/// 24-bit accumulator register and two 8-bit operand pipeline registers (the
/// systolic pass-throughs).
#[must_use]
pub fn conventional_mac(tech: &TechnologyProfile) -> UnitCost {
    let mult = multiplier(8, 8, true, tech);
    let acc_add = adder(24, tech);
    let regs = register(24, tech) + register(16, tech);
    UnitCost {
        breakdown: CostBreakdown {
            multiplication: mult,
            addition: acc_add,
            shifting: ComponentCost::ZERO,
            registering: regs,
        },
        macs_per_cycle: 1.0,
    }
}

/// Geometry of a composable vector unit for the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CvuGeometry {
    /// Bit-slice width `s` (the narrow multipliers' operand width).
    pub slice_bits: u32,
    /// Maximum operand bitwidth `B` (8 in the paper).
    pub max_bits: u32,
    /// NBVE vector length `L`.
    pub lanes: u32,
}

impl CvuGeometry {
    /// The paper's design point: 2-bit slices, 8-bit operands, `L = 16`.
    #[must_use]
    pub fn paper_default() -> Self {
        CvuGeometry {
            slice_bits: 2,
            max_bits: 8,
            lanes: 16,
        }
    }

    /// Slices per operand, `ceil(B/s)`.
    #[must_use]
    pub fn slices_per_operand(&self) -> u32 {
        self.max_bits.div_ceil(self.slice_bits)
    }

    /// NBVEs in the CVU, `(B/s)²`.
    #[must_use]
    pub fn num_nbves(&self) -> u32 {
        let n = self.slices_per_operand();
        n * n
    }
}

/// Cost of a single NBVE: `L` signed `s×s` slice multipliers plus the
/// private carry-save adder tree. The NBVE output feeds the global
/// aggregation combinationally; only the CVU output is registered.
///
/// Returns the cost breakdown and the tree's output width.
#[must_use]
pub fn nbve_cost(geom: &CvuGeometry, tech: &TechnologyProfile) -> (CostBreakdown, u32) {
    let s = geom.slice_bits;
    // Signed-aware slice multipliers operate on (s+1)-bit signed domains;
    // model them as s×s arrays with the signed overhead (1×1 stays an AND).
    let mults = multiplier(s, s, true, tech).scale(geom.lanes as f64);
    let product_width = 2 * s;
    let (tree, root_width) = compressor_tree(geom.lanes, product_width, tech);
    (
        CostBreakdown {
            multiplication: mults,
            addition: tree,
            shifting: ComponentCost::ZERO,
            registering: ComponentCost::ZERO,
        },
        root_width,
    )
}

/// Cost of a full CVU (paper Figure 3a): `(B/s)²` NBVEs, one runtime
/// barrel shifter per NBVE, the global adder tree and the 32-bit output
/// accumulator stage.
///
/// `macs_per_cycle` is the widest-mode throughput `L` (8-bit × 8-bit MACs).
#[must_use]
pub fn cvu_cost(geom: &CvuGeometry, tech: &TechnologyProfile) -> UnitCost {
    let n = geom.slices_per_operand();
    let num_nbves = geom.num_nbves();
    let (nbve, root_width) = nbve_cost(geom, tech);
    let mut breakdown = nbve.scale(num_nbves as f64);

    // Runtime-flexible shift selection: the 2n-1 distinct significance sums
    // (shift amounts are multiples of s in 0..=2(n-1)s) are pre-wired as
    // offsets into the global tree; one mux network per significance group
    // selects the active offset when the composition is reconfigured. Only
    // the root_width significant bits pass through the muxes.
    let max_shift = 2 * (n - 1) * geom.slice_bits;
    let distinct_shifts = 2 * n - 1;
    let shifters = barrel_shifter(root_width, distinct_shifts, tech).scale(distinct_shifts as f64);
    breakdown.shifting += shifters;

    // Global aggregation across NBVE outputs: a carry-save tree over the
    // shifted (partially overlapping) operands.
    let (global_tree, global_width) = shifted_adder_tree(num_nbves, root_width, max_shift, tech);
    breakdown.addition += global_tree;

    // Output accumulation: 32-bit adder + register (the systolic column
    // accumulators are wider, but live outside the unit in both designs).
    breakdown.addition += adder(32.max(global_width), tech);
    breakdown.registering += register(32.max(global_width), tech);

    UnitCost {
        breakdown,
        macs_per_cycle: geom.lanes as f64,
    }
}

/// Ablation: a *flat* CVU that feeds all `n²·L` slice products into one
/// global shifted aggregation tree, with no private per-NBVE trees — the
/// organization the paper's two-level scheme is implicitly compared against
/// (§III-B observation 1/2: private trees amortize aggregation).
#[must_use]
pub fn cvu_cost_flat(geom: &CvuGeometry, tech: &TechnologyProfile) -> UnitCost {
    let s = geom.slice_bits;
    let n = geom.slices_per_operand();
    let num_nbves = geom.num_nbves();
    let total_products = num_nbves * geom.lanes;
    let mults = multiplier(s, s, true, tech).scale(f64::from(total_products));
    // Every product is shifted individually, then one huge carry-save tree
    // aggregates all of them.
    let product_width = 2 * s;
    let max_shift = 2 * (n - 1) * geom.slice_bits;
    let distinct_shifts = 2 * n - 1;
    let shifters =
        barrel_shifter(product_width, distinct_shifts, tech).scale(f64::from(total_products));
    let (global_tree, global_width) =
        shifted_adder_tree(total_products, product_width, max_shift, tech);
    let mut breakdown = CostBreakdown {
        multiplication: mults,
        addition: global_tree,
        shifting: shifters,
        registering: ComponentCost::ZERO,
    };
    breakdown.addition += adder(32.max(global_width), tech);
    breakdown.registering += register(32.max(global_width), tech);
    UnitCost {
        breakdown,
        macs_per_cycle: f64::from(geom.lanes),
    }
}

/// A BitFusion-style fusion unit: scalar spatial bit-level composability,
/// i.e. exactly a CVU with `L = 1` (paper §III-B observation 4).
#[must_use]
pub fn bitfusion_fusion_unit(tech: &TechnologyProfile) -> UnitCost {
    cvu_cost(
        &CvuGeometry {
            slice_bits: 2,
            max_bits: 8,
            lanes: 1,
        },
        tech,
    )
}

/// MAC-equivalent throughput multiplier when operating at reduced operand
/// bitwidths on a bit-composable unit (CVU or fusion unit): the number of
/// parallel clusters, `(B/s)² / (ceil(bx/s)·ceil(bw/s))`.
#[must_use]
pub fn throughput_multiplier(geom: &CvuGeometry, bx: u32, bw: u32) -> f64 {
    let per_cluster = bx.div_ceil(geom.slice_bits) * bw.div_ceil(geom.slice_bits);
    (geom.num_nbves() / per_cluster) as f64
}

/// Energy per operand-level MAC (pJ) when a bit-composable unit runs at
/// bitwidths `(bx, bw)`: the unit's full power is spent every cycle, but the
/// cycle completes `clusters × L` narrower MACs.
#[must_use]
pub fn composable_energy_per_mac_pj(unit: &UnitCost, geom: &CvuGeometry, bx: u32, bw: u32) -> f64 {
    let ops = unit.macs_per_cycle * throughput_multiplier(geom, bx, bw);
    (unit.total().power / CLOCK_MHZ) / ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TechnologyProfile {
        TechnologyProfile::nm45()
    }

    #[test]
    fn conventional_mac_has_no_shifting() {
        let mac = conventional_mac(&t());
        assert_eq!(mac.breakdown.shifting, ComponentCost::ZERO);
        assert!(mac.total().area > 0.0);
        assert_eq!(mac.macs_per_cycle, 1.0);
    }

    #[test]
    fn paper_geometry_counts() {
        let g = CvuGeometry::paper_default();
        assert_eq!(g.slices_per_operand(), 4);
        assert_eq!(g.num_nbves(), 16);
    }

    #[test]
    fn one_bit_geometry_needs_64_nbves() {
        let g = CvuGeometry {
            slice_bits: 1,
            max_bits: 8,
            lanes: 4,
        };
        assert_eq!(g.num_nbves(), 64);
    }

    #[test]
    fn cvu_power_grows_sublinearly_with_lanes() {
        // Doubling L doubles multipliers but amortizes shifters/global tree,
        // so total cost must grow by less than 2x.
        let c8 = cvu_cost(
            &CvuGeometry {
                slice_bits: 2,
                max_bits: 8,
                lanes: 8,
            },
            &t(),
        );
        let c16 = cvu_cost(&CvuGeometry::paper_default(), &t());
        assert!(c16.total().power < 2.0 * c8.total().power);
        assert!(c16.total().power > c8.total().power);
    }

    #[test]
    fn per_mac_cost_decreases_with_lanes() {
        let mut last = f64::INFINITY;
        for lanes in [1u32, 2, 4, 8, 16] {
            let c = cvu_cost(
                &CvuGeometry {
                    slice_bits: 2,
                    max_bits: 8,
                    lanes,
                },
                &t(),
            );
            let per_mac = c.per_mac().total().power;
            assert!(per_mac < last, "L={lanes}: {per_mac} !< {last}");
            last = per_mac;
        }
    }

    #[test]
    fn bitfusion_unit_is_the_l1_cvu() {
        let bf = bitfusion_fusion_unit(&t());
        assert_eq!(bf.macs_per_cycle, 1.0);
        let l1 = cvu_cost(
            &CvuGeometry {
                slice_bits: 2,
                max_bits: 8,
                lanes: 1,
            },
            &t(),
        );
        assert_eq!(bf.total(), l1.total());
    }

    #[test]
    fn two_level_aggregation_beats_flat_at_the_paper_design_point() {
        // DESIGN.md ablation: the private-tree + global-tree organization
        // must be cheaper than one flat aggregation over all 256 shifted
        // products (the "amortize the cost of add-tree" claim, §III-B(2)).
        let geom = CvuGeometry::paper_default();
        let two_level = cvu_cost(&geom, &t());
        let flat = cvu_cost_flat(&geom, &t());
        assert!(
            two_level.total().power < flat.total().power,
            "two-level {} vs flat {}",
            two_level.total().power,
            flat.total().power
        );
        assert!(two_level.total().area < flat.total().area);
    }

    #[test]
    fn flat_and_two_level_converge_at_l1() {
        // With one lane per NBVE there is nothing to amortize: the flat
        // organization costs about the same (within the register delta).
        let geom = CvuGeometry {
            slice_bits: 2,
            max_bits: 8,
            lanes: 1,
        };
        let two_level = cvu_cost(&geom, &t()).total().power;
        let flat = cvu_cost_flat(&geom, &t()).total().power;
        let ratio = flat / two_level;
        assert!((0.6..=1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn throughput_multiplier_matches_composition_rules() {
        let g = CvuGeometry::paper_default();
        assert_eq!(throughput_multiplier(&g, 8, 8), 1.0);
        assert_eq!(throughput_multiplier(&g, 8, 2), 4.0);
        assert_eq!(throughput_multiplier(&g, 4, 4), 4.0);
        assert_eq!(throughput_multiplier(&g, 2, 2), 16.0);
        assert_eq!(throughput_multiplier(&g, 8, 4), 2.0);
    }

    #[test]
    fn reduced_bitwidth_reduces_energy_per_mac() {
        let g = CvuGeometry::paper_default();
        let unit = cvu_cost(&g, &t());
        let e8 = composable_energy_per_mac_pj(&unit, &g, 8, 8);
        let e4 = composable_energy_per_mac_pj(&unit, &g, 4, 4);
        let e2 = composable_energy_per_mac_pj(&unit, &g, 2, 2);
        assert!((e8 / e4 - 4.0).abs() < 1e-9);
        assert!((e8 / e2 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn energy_per_mac_is_physical() {
        // A 45 nm 8-bit MAC costs on the order of 0.1-2 pJ.
        let mac = conventional_mac(&t());
        let e = mac.energy_per_mac_pj();
        assert!(e > 0.05 && e < 5.0, "energy {e} pJ out of plausible range");
    }
}
