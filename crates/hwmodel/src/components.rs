//! Datapath building blocks and their gate-level costs.
//!
//! Every block is decomposed into primitive cells of the
//! [`TechnologyProfile`]; the decompositions follow textbook structures:
//!
//! * **array multiplier** `n×m`: `n·m` AND gates for partial products, a
//!   reduction of `n·(m−1)` adders (half adders suffice for tiny arrays) and,
//!   for wide arrays, a final carry-propagate row — with a signed-handling
//!   overhead and a power-only glitch factor that grows with operand width;
//! * **carry-propagate adder** of width `w`: `w` full adders (power scaled
//!   by the adder-activity factor);
//! * **balanced adder tree** over `k` equal-width inputs: each level halves
//!   the operand count and grows the width by one bit;
//! * **shifted (carry-save) aggregation tree** over `k` inputs placed at
//!   different significance offsets: 3:2-compressor cost proportional to the
//!   *significant* input bits, plus one final CPA over the full span — the
//!   structure the CVU's global aggregation uses;
//! * **barrel shifter**: one 2:1-mux row per shift stage over the operand's
//!   significant bits (offsets are pre-wired; the muxes select);
//! * **register**: one flip-flop per bit.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use crate::tech::TechnologyProfile;

/// An (area, power) cost pair. Units follow [`TechnologyProfile`]:
/// µm² and µW @ 500 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentCost {
    /// Silicon area, µm².
    pub area: f64,
    /// Dynamic power at 500 MHz, µW.
    pub power: f64,
}

impl ComponentCost {
    /// The zero cost.
    pub const ZERO: ComponentCost = ComponentCost {
        area: 0.0,
        power: 0.0,
    };

    /// Creates a cost pair.
    #[must_use]
    pub fn new(area: f64, power: f64) -> Self {
        ComponentCost { area, power }
    }

    /// Scales both area and power by `factor`.
    #[must_use]
    pub fn scale(self, factor: f64) -> Self {
        ComponentCost {
            area: self.area * factor,
            power: self.power * factor,
        }
    }

    /// Scales only the power term (for activity/glitch factors).
    #[must_use]
    pub fn scale_power(self, factor: f64) -> Self {
        ComponentCost {
            area: self.area,
            power: self.power * factor,
        }
    }
}

impl Add for ComponentCost {
    type Output = ComponentCost;

    fn add(self, rhs: ComponentCost) -> ComponentCost {
        ComponentCost {
            area: self.area + rhs.area,
            power: self.power + rhs.power,
        }
    }
}

impl AddAssign for ComponentCost {
    fn add_assign(&mut self, rhs: ComponentCost) {
        self.area += rhs.area;
        self.power += rhs.power;
    }
}

impl Mul<f64> for ComponentCost {
    type Output = ComponentCost;

    fn mul(self, rhs: f64) -> ComponentCost {
        self.scale(rhs)
    }
}

impl Sum for ComponentCost {
    fn sum<I: Iterator<Item = ComponentCost>>(iter: I) -> ComponentCost {
        iter.fold(ComponentCost::ZERO, |a, b| a + b)
    }
}

fn fa(tech: &TechnologyProfile) -> ComponentCost {
    ComponentCost::new(tech.fa_area, tech.fa_power)
}

fn ha(tech: &TechnologyProfile) -> ComponentCost {
    ComponentCost::new(tech.ha_area, tech.ha_power)
}

fn and2(tech: &TechnologyProfile) -> ComponentCost {
    ComponentCost::new(tech.and_area, tech.and_power)
}

fn ff_bit(tech: &TechnologyProfile) -> ComponentCost {
    ComponentCost::new(tech.ff_area, tech.ff_power)
}

fn mux_bit(tech: &TechnologyProfile) -> ComponentCost {
    ComponentCost::new(tech.mux_area, tech.mux_power)
}

fn log2_ceil(k: u32) -> u32 {
    if k <= 1 {
        0
    } else {
        32 - (k - 1).leading_zeros()
    }
}

/// Cost of an `n×m` array multiplier (signed when `signed` is set).
///
/// A 1×1 "multiplier" degenerates to a single AND gate — the paper's point
/// that 1-bit slicing makes multipliers almost free. Tiny arrays
/// (`n + m <= 4`) reduce with half adders; wide arrays additionally pay a
/// final carry-propagate row and a power-only glitch factor.
#[must_use]
pub fn multiplier(n: u32, m: u32, signed: bool, tech: &TechnologyProfile) -> ComponentCost {
    let partial_products = and2(tech).scale((n * m) as f64);
    let mut cost = partial_products;
    if n * m > 1 {
        let reduction_cells = n.min(m) * (n.max(m) - 1);
        let reduction = if n + m <= 4 {
            ha(tech).scale(reduction_cells as f64)
        } else {
            // Wide arrays pay a final fast carry-propagate row whose cost
            // grows with the product width.
            let cpa_extra = 2 * (n + m).saturating_sub(6);
            fa(tech).scale((reduction_cells + cpa_extra) as f64)
        };
        cost += reduction;
        if signed {
            cost = cost.scale(tech.sign_overhead);
        }
    }
    let glitch = 1.0 + tech.glitch_coef * f64::from((n + m).saturating_sub(4));
    cost.scale_power(glitch)
}

/// Cost of a carry-propagate adder of width `w` bits (power carries the
/// adder-activity factor).
#[must_use]
pub fn adder(w: u32, tech: &TechnologyProfile) -> ComponentCost {
    fa(tech).scale(w as f64).scale_power(tech.adder_activity)
}

/// Cost of a balanced adder tree summing `k` equal-significance inputs of
/// `input_width` bits.
///
/// Returns the cost and the output width. Levels: `ceil(log2 k)`; level `i`
/// (1-based) holds `floor(remaining / 2)` adders of the current width.
/// Aggregation structures carry the technology's wiring overhead.
#[must_use]
pub fn adder_tree(k: u32, input_width: u32, tech: &TechnologyProfile) -> (ComponentCost, u32) {
    if k <= 1 {
        return (ComponentCost::ZERO, input_width);
    }
    let mut cost = ComponentCost::ZERO;
    let mut remaining = k;
    let mut width = input_width;
    while remaining > 1 {
        let pairs = remaining / 2;
        cost += adder(width, tech).scale(pairs as f64);
        remaining = remaining.div_ceil(2);
        width += 1;
    }
    (cost.scale(tech.wiring_overhead), width)
}

/// Cost of a *local* carry-save compressor tree summing `k` equal-width
/// inputs: `(k−2)` rows of 3:2 compressors over the input width plus one
/// final carry-propagate adder over the grown output — the structure an
/// NBVE's private adder tree synthesizes to. Local trees are compact, so no
/// wiring overhead applies.
///
/// Returns the cost and the output width `input_width + ceil(log2 k)`.
#[must_use]
pub fn compressor_tree(k: u32, input_width: u32, tech: &TechnologyProfile) -> (ComponentCost, u32) {
    let out_width = input_width + log2_ceil(k);
    if k <= 1 {
        return (ComponentCost::ZERO, out_width);
    }
    let compressors = fa(tech).scale((k.saturating_sub(2) * input_width) as f64);
    let final_cpa = fa(tech).scale(out_width as f64);
    let cost = (compressors + final_cpa).scale_power(tech.adder_activity);
    (cost, out_width)
}

/// Cost of a carry-save aggregation tree over `k` inputs of `input_width`
/// significant bits placed at significance offsets spanning `max_shift`
/// bits — the CVU's *global* tree, which sums NBVE outputs after shifting.
///
/// Because shifted operands only partially overlap, the 3:2-compressor cost
/// is proportional to the significant bits per operand
/// (`input_width + log2 k` growth), not to the full shifted span; only the
/// final carry-propagate adder pays for the whole span.
///
/// Returns the cost and the final output width.
#[must_use]
pub fn shifted_adder_tree(
    k: u32,
    input_width: u32,
    max_shift: u32,
    tech: &TechnologyProfile,
) -> (ComponentCost, u32) {
    let out_width = input_width + max_shift + log2_ceil(k);
    if k <= 1 {
        return (ComponentCost::ZERO, out_width);
    }
    let compressor_width = input_width + log2_ceil(k);
    let compressors = fa(tech).scale(((k - 2) * compressor_width) as f64);
    let final_cpa = fa(tech).scale(out_width as f64);
    let cost = (compressors + final_cpa)
        .scale(tech.wiring_overhead)
        .scale_power(tech.adder_activity);
    (cost, out_width)
}

/// Cost of the shift-select network for one value of `width` significant
/// bits choosing among `distinct_shifts` pre-wired offsets
/// (`ceil(log2)` mux stages; a single fixed shift is free wiring).
#[must_use]
pub fn barrel_shifter(width: u32, distinct_shifts: u32, tech: &TechnologyProfile) -> ComponentCost {
    if distinct_shifts <= 1 {
        return ComponentCost::ZERO;
    }
    let stages = log2_ceil(distinct_shifts);
    mux_bit(tech).scale((width * stages) as f64)
}

/// Cost of a `bits`-wide pipeline/accumulator register.
#[must_use]
pub fn register(bits: u32, tech: &TechnologyProfile) -> ComponentCost {
    ff_bit(tech).scale(bits as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TechnologyProfile {
        TechnologyProfile::nm45()
    }

    #[test]
    fn one_by_one_multiplier_is_an_and_gate() {
        let c = multiplier(1, 1, true, &t());
        assert!((c.area - t().and_area).abs() < 1e-12);
        // 1x1 sees no glitch factor (n+m-4 saturates to 0).
        assert!((c.power - t().and_power).abs() < 1e-12);
    }

    #[test]
    fn multiplier_cost_grows_quadratically() {
        let m2 = multiplier(2, 2, false, &t());
        let m4 = multiplier(4, 4, false, &t());
        let m8 = multiplier(8, 8, false, &t());
        assert!(m4.area > 2.0 * m2.area);
        assert!(m8.area > 3.0 * m4.area);
    }

    #[test]
    fn wide_multiplier_power_glitches_beyond_area_ratio() {
        let m2 = multiplier(2, 2, false, &t());
        let m8 = multiplier(8, 8, false, &t());
        assert!(
            m8.power / m2.power > m8.area / m2.area,
            "glitch factor must make power grow faster than area"
        );
    }

    #[test]
    fn signed_overhead_applies_above_one_bit() {
        let unsigned = multiplier(8, 8, false, &t());
        let signed = multiplier(8, 8, true, &t());
        assert!((signed.area / unsigned.area - t().sign_overhead).abs() < 1e-9);
    }

    #[test]
    fn adder_power_includes_activity() {
        let a = adder(8, &t());
        assert!((a.power - 8.0 * t().fa_power * t().adder_activity).abs() < 1e-9);
        assert!((a.area - 8.0 * t().fa_area).abs() < 1e-9);
    }

    #[test]
    fn adder_tree_single_input_is_free() {
        let (c, w) = adder_tree(1, 8, &t());
        assert_eq!(c, ComponentCost::ZERO);
        assert_eq!(w, 8);
    }

    #[test]
    fn adder_tree_widths_grow_one_bit_per_level() {
        let (_, w) = adder_tree(16, 4, &t());
        assert_eq!(w, 8); // 4 levels over 16 inputs
        let (_, w) = adder_tree(3, 4, &t());
        assert_eq!(w, 6); // 2 levels over 3 inputs
    }

    #[test]
    fn adder_tree_cost_counts_every_level() {
        // 4 inputs of 4 bits: level 1 = 2 adders x 4b, level 2 = 1 adder x 5b.
        let (c, _) = adder_tree(4, 4, &t());
        let expect = (adder(4, &t()).scale(2.0) + adder(5, &t())).scale(t().wiring_overhead);
        assert!((c.area - expect.area).abs() < 1e-9);
    }

    #[test]
    fn shifted_tree_output_spans_the_full_shift_range() {
        let (_, w) = shifted_adder_tree(16, 8, 12, &t());
        assert_eq!(w, 8 + 12 + 4);
    }

    #[test]
    fn shifted_tree_is_cheaper_than_full_width_balanced_tree() {
        // The CSA/overlap argument: aggregating 64 shifted 8-bit values must
        // cost less than a balanced tree of 64 full-span (22-bit) values.
        let (csa, _) = shifted_adder_tree(64, 8, 14, &t());
        let (full, _) = adder_tree(64, 22, &t());
        assert!(csa.power < full.power);
    }

    #[test]
    fn shifted_tree_single_input_is_free() {
        let (c, w) = shifted_adder_tree(1, 8, 12, &t());
        assert_eq!(c, ComponentCost::ZERO);
        assert_eq!(w, 20);
    }

    #[test]
    fn barrel_shifter_free_for_fixed_shift() {
        assert_eq!(barrel_shifter(20, 1, &t()), ComponentCost::ZERO);
        assert_eq!(barrel_shifter(20, 0, &t()), ComponentCost::ZERO);
    }

    #[test]
    fn barrel_shifter_stage_count_is_log2() {
        let one_stage = barrel_shifter(10, 2, &t());
        let three_stages = barrel_shifter(10, 7, &t());
        assert!((three_stages.area / one_stage.area - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cost_arithmetic_behaves() {
        let a = ComponentCost::new(1.0, 2.0);
        let b = ComponentCost::new(3.0, 4.0);
        let s: ComponentCost = [a, b].into_iter().sum();
        assert_eq!(s, ComponentCost::new(4.0, 6.0));
        assert_eq!(a * 2.0, ComponentCost::new(2.0, 4.0));
        let mut c = a;
        c += b;
        assert_eq!(c, s);
        assert_eq!(a.scale_power(2.0), ComponentCost::new(1.0, 4.0));
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(16), 4);
        assert_eq!(log2_ceil(17), 5);
    }
}
