//! Design-space exploration (paper Figure 4 and §III-B).
//!
//! Sweeps slice width × NBVE vector length and reports power/area per
//! 8b×8b MAC normalized to the conventional digital 8-bit MAC, with the
//! multiplication/addition/shifting/registering breakdown of Figure 4.

use serde::{Deserialize, Serialize};

use crate::tech::TechnologyProfile;
use crate::units::{conventional_mac, cvu_cost, CostBreakdown, CvuGeometry};

/// One configuration in the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Bit-slice width (1, 2 or 4).
    pub slice_bits: u32,
    /// NBVE vector length `L`.
    pub lanes: u32,
}

/// A swept design point with its normalized metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// The configuration.
    pub design: DesignPoint,
    /// Power per 8b MAC relative to the conventional MAC (lower is better).
    pub norm_power: f64,
    /// Area per 8b MAC relative to the conventional MAC.
    pub norm_area: f64,
    /// Per-category normalized *power* breakdown (sums to `norm_power`).
    pub power_breakdown: NormalizedBreakdown,
    /// Per-category normalized *area* breakdown (sums to `norm_area`).
    pub area_breakdown: NormalizedBreakdown,
}

/// Figure 4's four stacked categories, normalized to the conventional MAC.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NormalizedBreakdown {
    /// Multiplication cells.
    pub multiplication: f64,
    /// Adder trees and accumulator adders.
    pub addition: f64,
    /// Alignment shifters.
    pub shifting: f64,
    /// Pipeline/accumulator registers.
    pub registering: f64,
}

impl NormalizedBreakdown {
    fn from_costs(per_mac: &CostBreakdown, norm_area: f64, norm_power: f64) -> (Self, Self) {
        let power = NormalizedBreakdown {
            multiplication: per_mac.multiplication.power / norm_power,
            addition: per_mac.addition.power / norm_power,
            shifting: per_mac.shifting.power / norm_power,
            registering: per_mac.registering.power / norm_power,
        };
        let area = NormalizedBreakdown {
            multiplication: per_mac.multiplication.area / norm_area,
            addition: per_mac.addition.area / norm_area,
            shifting: per_mac.shifting.area / norm_area,
            registering: per_mac.registering.area / norm_area,
        };
        (power, area)
    }

    /// Sum of the four categories.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.multiplication + self.addition + self.shifting + self.registering
    }

    /// The largest category's name and value.
    #[must_use]
    pub fn dominant(&self) -> (&'static str, f64) {
        let cats = [
            ("multiplication", self.multiplication),
            ("addition", self.addition),
            ("shifting", self.shifting),
            ("registering", self.registering),
        ];
        cats.into_iter()
            .fold(("multiplication", f64::MIN), |best, c| {
                if c.1 > best.1 {
                    c
                } else {
                    best
                }
            })
    }
}

/// Evaluates one design point against the conventional MAC baseline.
#[must_use]
pub fn evaluate(design: DesignPoint, tech: &TechnologyProfile) -> DsePoint {
    evaluate_against(design, tech, &conventional_mac(tech).total())
}

/// [`evaluate`] with the conventional-MAC baseline supplied by the caller,
/// so sweeps cost the baseline synthesis once instead of once per point.
fn evaluate_against(
    design: DesignPoint,
    tech: &TechnologyProfile,
    baseline: &crate::components::ComponentCost,
) -> DsePoint {
    let geom = CvuGeometry {
        slice_bits: design.slice_bits,
        max_bits: 8,
        lanes: design.lanes,
    };
    let unit = cvu_cost(&geom, tech);
    let per_mac = unit.per_mac();
    let total = per_mac.total();
    let norm_power = total.power / baseline.power;
    let norm_area = total.area / baseline.area;
    let (power_breakdown, area_breakdown) =
        NormalizedBreakdown::from_costs(&per_mac, baseline.area, baseline.power);
    DsePoint {
        design,
        norm_power,
        norm_area,
        power_breakdown,
        area_breakdown,
    }
}

/// Sweeps `slice_bits × lanes` and returns one [`DsePoint`] per combination.
/// The shared baseline is computed once for the whole sweep.
#[must_use]
pub fn sweep(slice_widths: &[u32], lane_counts: &[u32], tech: &TechnologyProfile) -> Vec<DsePoint> {
    let baseline = conventional_mac(tech).total();
    let mut out = Vec::with_capacity(slice_widths.len() * lane_counts.len());
    for &s in slice_widths {
        for &l in lane_counts {
            out.push(evaluate_against(
                DesignPoint {
                    slice_bits: s,
                    lanes: l,
                },
                tech,
                &baseline,
            ));
        }
    }
    out
}

/// The exact Figure 4 sweep: slice widths {1, 2}, `L ∈ {1, 2, 4, 8, 16}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4 {
    /// The 1-bit-slicing series, `L = 1, 2, 4, 8, 16`.
    pub one_bit: Vec<DsePoint>,
    /// The 2-bit-slicing series, `L = 1, 2, 4, 8, 16`.
    pub two_bit: Vec<DsePoint>,
}

impl Figure4 {
    /// Runs the Figure 4 design-space exploration (one shared baseline for
    /// both series).
    #[must_use]
    pub fn generate(tech: &TechnologyProfile) -> Self {
        let lanes = [1u32, 2, 4, 8, 16];
        let baseline = conventional_mac(tech).total();
        let series = |slice_bits: u32| {
            lanes
                .iter()
                .map(|&l| {
                    evaluate_against(
                        DesignPoint {
                            slice_bits,
                            lanes: l,
                        },
                        tech,
                        &baseline,
                    )
                })
                .collect()
        };
        Figure4 {
            one_bit: series(1),
            two_bit: series(2),
        }
    }
}

/// The paper's reported Figure 4 series, used as calibration targets and in
/// EXPERIMENTS.md comparisons. Values are normalized power/area per MAC.
pub mod paper {
    /// 1-bit slicing normalized power, L = 1, 2, 4, 8, 16.
    pub const ONE_BIT_POWER: [f64; 5] = [3.60, 2.25, 1.58, 1.31, 1.17];
    /// 2-bit slicing normalized power.
    pub const TWO_BIT_POWER: [f64; 5] = [1.18, 0.77, 0.56, 0.51, 0.49];
    /// 1-bit slicing normalized area (chart labels).
    pub const ONE_BIT_AREA: [f64; 5] = [3.5, 2.3, 1.5, 1.2, 1.0];
    /// 2-bit slicing normalized area (chart labels).
    pub const TWO_BIT_AREA: [f64; 5] = [1.4, 1.1, 0.8, 0.7, 0.6];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4() -> Figure4 {
        Figure4::generate(&TechnologyProfile::nm45())
    }

    #[test]
    fn series_decrease_monotonically_with_lanes() {
        let f = fig4();
        for series in [&f.one_bit, &f.two_bit] {
            for w in series.windows(2) {
                assert!(w[1].norm_power < w[0].norm_power);
                assert!(w[1].norm_area < w[0].norm_area);
            }
        }
    }

    #[test]
    fn improvement_saturates_at_large_l() {
        // Paper observation 2: the gain from L=8 -> L=16 is much smaller than
        // from L=1 -> L=2.
        let f = fig4();
        for series in [&f.one_bit, &f.two_bit] {
            let early_gain = series[0].norm_power / series[1].norm_power;
            let late_gain = series[3].norm_power / series[4].norm_power;
            assert!(late_gain < early_gain);
            assert!(late_gain < 1.3, "late gain {late_gain} should be small");
        }
    }

    #[test]
    fn one_bit_slicing_never_beats_conventional() {
        // Paper observation 3: 1-bit slicing provides no benefit.
        for p in fig4().one_bit {
            assert!(
                p.norm_power >= 0.95,
                "1-bit L={} power {} unexpectedly good",
                p.design.lanes,
                p.norm_power
            );
        }
    }

    #[test]
    fn two_bit_l16_hits_paper_design_point() {
        // Paper: 2.0x power and 1.7x area improvement at s=2, L=16.
        let p = fig4().two_bit[4];
        assert!(
            (0.40..=0.62).contains(&p.norm_power),
            "2-bit L=16 power {} outside paper band (target 0.49)",
            p.norm_power
        );
        assert!(
            (0.47..=0.72).contains(&p.norm_area),
            "2-bit L=16 area {} outside paper band (target 0.6)",
            p.norm_area
        );
    }

    #[test]
    fn two_bit_l1_matches_bitfusion_overhead() {
        // Paper: the L=1 point (BitFusion-style) carries ~40% area overhead
        // and ~2.4x the power of the L=16 CVU.
        let f = fig4();
        let l1 = f.two_bit[0];
        let l16 = f.two_bit[4];
        assert!(
            l1.norm_area > 1.15,
            "2-bit L=1 area {} should exceed conventional",
            l1.norm_area
        );
        let power_ratio = l1.norm_power / l16.norm_power;
        assert!(
            (1.8..=3.2).contains(&power_ratio),
            "L=1/L=16 power ratio {power_ratio} (paper: 2.4)"
        );
    }

    #[test]
    fn one_bit_l1_is_much_worse_than_conventional() {
        let p = fig4().one_bit[0];
        assert!(
            p.norm_power > 2.8,
            "1-bit L=1 power {} (paper: 3.6)",
            p.norm_power
        );
    }

    #[test]
    fn addition_dominates_the_breakdown() {
        // Paper observation 1: the adder tree ranks first in power/area.
        for p in fig4().one_bit.iter().chain(&fig4().two_bit) {
            let (name, _) = p.power_breakdown.dominant();
            assert_eq!(
                name, "addition",
                "L={} s={}",
                p.design.lanes, p.design.slice_bits
            );
        }
    }

    #[test]
    fn breakdowns_sum_to_totals() {
        for p in fig4().one_bit.iter().chain(&fig4().two_bit) {
            assert!((p.power_breakdown.total() - p.norm_power).abs() < 1e-9);
            assert!((p.area_breakdown.total() - p.norm_area).abs() < 1e-9);
        }
    }

    #[test]
    fn one_bit_always_costs_more_than_two_bit() {
        let f = fig4();
        for (a, b) in f.one_bit.iter().zip(&f.two_bit) {
            assert!(a.norm_power > b.norm_power);
            assert!(a.norm_area > b.norm_area);
        }
    }

    #[test]
    fn four_bit_slicing_has_cheaper_aggregation_but_pricier_multipliers() {
        // Paper §III-B(3) claims 4-bit slicing lowers overall power/area.
        // Under an array-multiplier model the aggregation (addition +
        // shifting) is indeed cheaper — fewer, shallower trees — but the
        // multiplier cost grows with slice width ((B/s)² s(s−1) reduction
        // cells), which offsets part of that saving. We assert the
        // aggregation-side claim, which is the mechanism the paper argues
        // from; the total-cost delta is recorded in EXPERIMENTS.md.
        let t = TechnologyProfile::nm45();
        let two = evaluate(
            DesignPoint {
                slice_bits: 2,
                lanes: 16,
            },
            &t,
        );
        let four = evaluate(
            DesignPoint {
                slice_bits: 4,
                lanes: 16,
            },
            &t,
        );
        let agg2 = two.power_breakdown.addition + two.power_breakdown.shifting;
        let agg4 = four.power_breakdown.addition + four.power_breakdown.shifting;
        assert!(agg4 < agg2);
        assert!(four.power_breakdown.multiplication > two.power_breakdown.multiplication);
    }

    #[test]
    fn sweep_covers_cartesian_product() {
        let pts = sweep(&[1, 2, 4], &[1, 4, 16], &TechnologyProfile::nm45());
        assert_eq!(pts.len(), 9);
    }
}
