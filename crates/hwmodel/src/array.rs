//! Whole-accelerator cost model: a 2-D systolic array of compute units plus
//! the operand delivery-aggregation fabric (paper §III-C).
//!
//! The paper's Table II packs 512 / 448 / 1024 MAC-equivalents into the same
//! 250 mW core budget; this module closes the loop by costing the *entire*
//! core — units, row input-broadcast buses, column accumulators and
//! pipeline registers — and verifying the budget is actually met at the
//! stated unit counts.

use serde::{Deserialize, Serialize};

use crate::components::{adder, register, ComponentCost};
use crate::tech::TechnologyProfile;
use crate::units::{bitfusion_fusion_unit, conventional_mac, cvu_cost, CvuGeometry, UnitCost};

/// Bit width of the systolic column accumulators (paper §III-C: "accumulate
/// using 64-bit registers").
pub const COLUMN_ACCUMULATOR_BITS: u32 = 64;

/// A systolic array organization of one of the three evaluated designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Unit rows.
    pub rows: u32,
    /// Unit columns.
    pub cols: u32,
    /// Operand bits delivered per lane per cycle (8 for all designs).
    pub operand_bits: u32,
    /// Vector lanes per unit (1 for scalar units, `L` for CVUs).
    pub lanes_per_unit: u32,
}

impl ArrayGeometry {
    /// Total units.
    #[must_use]
    pub fn units(&self) -> u32 {
        self.rows * self.cols
    }
}

/// Cost summary of a complete accelerator core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreCost {
    /// Compute units.
    pub units: ComponentCost,
    /// Row input-broadcast buses and operand pipeline registers.
    pub delivery: ComponentCost,
    /// Column accumulators (adder + 64-bit register per column).
    pub aggregation: ComponentCost,
    /// 8-bit MAC-equivalents per cycle at full width.
    pub macs_per_cycle: f64,
}

impl CoreCost {
    /// Total core (area, power).
    #[must_use]
    pub fn total(&self) -> ComponentCost {
        self.units + self.delivery + self.aggregation
    }

    /// Core power in milliwatts.
    #[must_use]
    pub fn power_mw(&self) -> f64 {
        self.total().power / 1000.0
    }

    /// Core area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.total().area / 1e6
    }
}

fn delivery_cost(geom: &ArrayGeometry, tech: &TechnologyProfile) -> ComponentCost {
    // Per row: a broadcast bus pipeline register of lane-width operand bits;
    // per unit: local operand latch.
    let row_bits = geom.operand_bits * geom.lanes_per_unit;
    let row_regs = register(row_bits, tech).scale(f64::from(geom.rows));
    let unit_latches = register(row_bits, tech).scale(f64::from(geom.units()));
    row_regs + unit_latches
}

fn aggregation_cost(geom: &ArrayGeometry, tech: &TechnologyProfile) -> ComponentCost {
    // Per column: a 64-bit accumulator adder + register.
    let per_col = adder(COLUMN_ACCUMULATOR_BITS, tech) + register(COLUMN_ACCUMULATOR_BITS, tech);
    per_col.scale(f64::from(geom.cols))
}

fn core(unit: UnitCost, geom: ArrayGeometry, tech: &TechnologyProfile) -> CoreCost {
    CoreCost {
        units: unit.total().scale(f64::from(geom.units())),
        delivery: delivery_cost(&geom, tech),
        aggregation: aggregation_cost(&geom, tech),
        macs_per_cycle: unit.macs_per_cycle * f64::from(geom.units()),
    }
}

/// The Table II TPU-like core: 512 conventional MACs as a 16×32 array.
#[must_use]
pub fn tpu_like_core(tech: &TechnologyProfile) -> CoreCost {
    core(
        conventional_mac(tech),
        ArrayGeometry {
            rows: 16,
            cols: 32,
            operand_bits: 8,
            lanes_per_unit: 1,
        },
        tech,
    )
}

/// The Table II BitFusion core: 448 fusion units as a 16×28 array.
#[must_use]
pub fn bitfusion_core(tech: &TechnologyProfile) -> CoreCost {
    core(
        bitfusion_fusion_unit(tech),
        ArrayGeometry {
            rows: 16,
            cols: 28,
            operand_bits: 8,
            lanes_per_unit: 1,
        },
        tech,
    )
}

/// The Table II BPVeC core: 64 CVUs (1024 lanes) as an 8×8 array.
#[must_use]
pub fn bpvec_core(tech: &TechnologyProfile) -> CoreCost {
    core(
        cvu_cost(&CvuGeometry::paper_default(), tech),
        ArrayGeometry {
            rows: 8,
            cols: 8,
            operand_bits: 8,
            lanes_per_unit: 16,
        },
        tech,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TechnologyProfile {
        TechnologyProfile::nm45()
    }

    #[test]
    fn all_cores_meet_the_250mw_budget_within_tolerance() {
        // Table II sizes each design for a 250 mW core. Our independently
        // calibrated cost model must land near that for all three (±30%) —
        // the cross-check that unit counts, Figure 4 and Table II cohere.
        for (name, core) in [
            ("tpu", tpu_like_core(&t())),
            ("bitfusion", bitfusion_core(&t())),
            ("bpvec", bpvec_core(&t())),
        ] {
            let mw = core.power_mw();
            assert!(
                (175.0..=325.0).contains(&mw),
                "{name} core power {mw:.1} mW vs 250 mW budget"
            );
        }
    }

    #[test]
    fn throughput_matches_table2_unit_counts() {
        assert_eq!(tpu_like_core(&t()).macs_per_cycle, 512.0);
        assert_eq!(bitfusion_core(&t()).macs_per_cycle, 448.0);
        assert_eq!(bpvec_core(&t()).macs_per_cycle, 1024.0);
    }

    #[test]
    fn bpvec_amortizes_result_aggregation_over_vector_lanes() {
        // Per MAC-equivalent, the vectorized design spends far less on the
        // operand delivery-aggregation fabric: a CVU emits one scalar per
        // 16-lane dot-product, so the array needs 4x fewer accumulator
        // columns per MAC than the scalar designs — the paper's
        // "amortizes the cost ... across the elements of the vector".
        let bp = bpvec_core(&t());
        let tpu = tpu_like_core(&t());
        let bp_agg_per_mac = bp.aggregation.power / bp.macs_per_cycle;
        let tpu_agg_per_mac = tpu.aggregation.power / tpu.macs_per_cycle;
        assert!(
            bp_agg_per_mac < 0.5 * tpu_agg_per_mac,
            "bpvec {bp_agg_per_mac} vs tpu {tpu_agg_per_mac}"
        );
    }

    #[test]
    fn aggregation_scales_with_columns_only() {
        let wide = ArrayGeometry {
            rows: 4,
            cols: 32,
            operand_bits: 8,
            lanes_per_unit: 1,
        };
        let tall = ArrayGeometry {
            rows: 32,
            cols: 4,
            operand_bits: 8,
            lanes_per_unit: 1,
        };
        let a = aggregation_cost(&wide, &t());
        let b = aggregation_cost(&tall, &t());
        assert!((a.power / b.power - 8.0).abs() < 1e-9);
    }

    #[test]
    fn units_dominate_the_core() {
        // The fabric is overhead, not the main cost, in every design.
        for core in [tpu_like_core(&t()), bitfusion_core(&t()), bpvec_core(&t())] {
            let total = core.total().power;
            assert!(core.units.power > 0.7 * total);
        }
    }

    #[test]
    fn core_areas_are_plausible_for_45nm() {
        // Sub-mm2 cores at 45 nm for a few hundred 8-bit MACs.
        for core in [tpu_like_core(&t()), bitfusion_core(&t()), bpvec_core(&t())] {
            let mm2 = core.area_mm2();
            assert!((0.05..5.0).contains(&mm2), "area {mm2} mm2");
        }
    }
}
