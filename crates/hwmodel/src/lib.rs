//! # `bpvec-hwmodel` — 45 nm area/power cost model for BPVeC
//!
//! The paper evaluates its hardware with Verilog RTL synthesized by Synopsys
//! Design Compiler at 45 nm / 500 MHz (§IV-A). That toolchain is not
//! available in a reproduction environment, so this crate substitutes a
//! *structural gate-level cost model*: every datapath block (array
//! multiplier, adder tree, barrel shifter, pipeline register) is decomposed
//! into primitive cells (full adders, AND gates, 2:1 muxes, flip-flops) with
//! calibrated 45 nm unit area and 500 MHz dynamic-power costs.
//!
//! The model is used for:
//!
//! * **Figure 4** — the design-space exploration over slice width
//!   (1-bit vs 2-bit) and NBVE vector length `L` (1..16), reporting
//!   power/area per 8b×8b MAC normalized to a conventional digital 8-bit MAC,
//!   broken down into multiplication / addition / shifting / registering.
//! * **Energy-per-operation inputs** to the `bpvec-sim` performance/energy
//!   simulator (conventional MAC, BitFusion fusion unit, BPVeC CVU, at any
//!   operand bitwidth combination).
//!
//! The headline observations the paper draws from this model are asserted as
//! tests in [`dse`]:
//!
//! 1. the adder tree dominates power/area;
//! 2. growing `L` amortizes aggregation and saturates around `L = 16`;
//! 3. 1-bit slicing never beats the conventional unit, 2-bit does;
//! 4. the 2-bit, `L = 16` CVU spends ≈2.0× less power and ≈1.7× less area
//!    per MAC than a conventional 8-bit MAC, and ≈2.4× less power than a
//!    BitFusion-style `L = 1` fusion unit.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod array;
pub mod components;
pub mod dse;
pub mod tech;
pub mod units;

pub use array::{ArrayGeometry, CoreCost};
pub use components::ComponentCost;
pub use dse::{DesignPoint, DsePoint, Figure4};
pub use tech::TechnologyProfile;
pub use units::{CostBreakdown, UnitCost};
