#[test]
fn print_series() {
    use bpvec_hwmodel::dse::Figure4;
    use bpvec_hwmodel::tech::TechnologyProfile;
    let f = Figure4::generate(&TechnologyProfile::nm45());
    for (name, s) in [("1-bit", &f.one_bit), ("2-bit", &f.two_bit)] {
        for p in s.iter() {
            println!(
                "{name} L={:2}: power {:.3} area {:.3} | P: m={:.3} a={:.3} s={:.3} r={:.3}",
                p.design.lanes,
                p.norm_power,
                p.norm_area,
                p.power_breakdown.multiplication,
                p.power_breakdown.addition,
                p.power_breakdown.shifting,
                p.power_breakdown.registering
            );
        }
    }
    use bpvec_hwmodel::units::*;
    let t = TechnologyProfile::nm45();
    let mac = conventional_mac(&t);
    println!(
        "conv MAC: area {:.1} power {:.1}, e/mac {:.3} pJ",
        mac.total().area,
        mac.total().power,
        mac.energy_per_mac_pj()
    );
}
