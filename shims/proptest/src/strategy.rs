//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;

/// Generates values of one type from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Maps a strategy's output through a function (see [`Strategy::prop_map`]).
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($idx:tt $name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(0 A);
impl_tuple_strategy!(0 A, 1 B);
impl_tuple_strategy!(0 A, 1 B, 2 C);
impl_tuple_strategy!(0 A, 1 B, 2 C, 3 D);
impl_tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E);
impl_tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E, 5 F);
