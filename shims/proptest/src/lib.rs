//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`], [`strategy::Just`],
//! range strategies, tuple strategies, `.prop_map`, and the
//! `proptest::bool::ANY` / `proptest::num::*::ANY` / `f32::NORMAL` markers.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test runs a fixed number of deterministic cases seeded from
//! the test's module path, so failures reproduce across runs.

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Runner configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; that is cheap for the pure bit
        // math these tests cover and keeps coverage comparable.
        ProptestConfig { cases: 256 }
    }
}

/// Why one generated case failed (no shrinking: the message is final).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    #[must_use]
    pub fn fail<T: std::fmt::Display>(msg: T) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG seeding: hash the test's identifying string.
#[must_use]
pub fn rng_for(test_path: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // FNV-1a over the path; any stable spread works here.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(h)
}

/// Marker strategies for `bool`.
pub mod bool {
    /// Uniform `true`/`false`.
    pub const ANY: BoolAny = BoolAny;

    /// Strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl crate::Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut rand::rngs::StdRng) -> bool {
            use rand::Rng;
            rng.gen_bool(0.5)
        }
    }
}

/// Marker strategies for numeric types.
pub mod num {
    macro_rules! any_mod {
        ($($mod_name:ident, $ty:ty, $struct_name:ident);* $(;)?) => {
            $(
                /// Strategies for one primitive type.
                pub mod $mod_name {
                    /// The full domain of the type.
                    pub const ANY: $struct_name = $struct_name;

                    /// Strategy type behind `ANY`.
                    #[derive(Debug, Clone, Copy)]
                    pub struct $struct_name;

                    impl crate::Strategy for $struct_name {
                        type Value = $ty;

                        fn sample(&self, rng: &mut rand::rngs::StdRng) -> $ty {
                            use rand::RngCore;
                            rng.next_u64() as $ty
                        }
                    }
                }
            )*
        };
    }

    any_mod! {
        i8, i8, I8Any;
        i16, i16, I16Any;
        i32, i32, I32Any;
        i64, i64, I64Any;
        u8, u8, U8Any;
        u16, u16, U16Any;
        u32, u32, U32Any;
        u64, u64, U64Any;
        usize, usize, UsizeAny;
    }

    /// Strategies for `f32`.
    pub mod f32 {
        /// Normal (finite, non-subnormal, nonzero-exponent) floats.
        pub const NORMAL: F32Normal = F32Normal;

        /// Strategy type behind [`NORMAL`].
        #[derive(Debug, Clone, Copy)]
        pub struct F32Normal;

        impl crate::Strategy for F32Normal {
            type Value = f32;

            fn sample(&self, rng: &mut rand::rngs::StdRng) -> f32 {
                use rand::{Rng, RngCore};
                let sign = u32::from(rng.gen_bool(0.5)) << 31;
                let exponent = rng.gen_range(1u32..=254) << 23;
                let mantissa = (rng.next_u64() as u32) & 0x007f_ffff;
                f32::from_bits(sign | exponent | mantissa)
            }
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Asserts inside a property; failures return `Err(TestCaseError)` from the
/// case body, as in real proptest.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        // One shared Vec type lets the arms' value types unify (integer
        // literals in later arms adopt the first arm's type).
        let mut __arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(__arms.push(::std::boxed::Box::new($strategy));)+
        $crate::strategy::Union::new(__arms)
    }};
}

/// Defines property tests: `fn name(binding in strategy, ...) { body }`.
///
/// Accepts an optional leading `#![proptest_config(expr)]` applying to the
/// whole block, exactly like real proptest.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($pat,)*) = (
                        $($crate::Strategy::sample(&($strategy), &mut __rng),)*
                    );
                    // The body may bail out with `Err(TestCaseError)`, as in
                    // real proptest where cases return a Result.
                    let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property `{}` failed on case {}: {e}",
                            stringify!($name), __case);
                    }
                }
            }
        )*
    };
}
