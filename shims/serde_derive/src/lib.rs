//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the workspace's `serde` shim without `syn`/`quote` (neither is available
//! offline): the item is parsed directly from the `proc_macro` token stream
//! and the impl is emitted as source text.
//!
//! Supported shapes — the ones this workspace uses:
//! * structs with named fields, tuple structs (single-field tuple structs
//!   serialize as newtypes) and unit structs;
//! * enums with unit, newtype, tuple and struct variants.
//!
//! Generic parameters and `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive needs to know about the item it was applied to.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// Derives `serde::ser::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct_body(name, fields),
        Item::Enum { name, variants } => serialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __s: __S) \
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derives `serde::de::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct_body(name, fields),
        Item::Enum { name, variants } => deserialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::de::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::de::Value) \
                 -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic parameters are not supported (type `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive shim: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Splits a field/variant list on commas that sit outside `<...>` nesting
/// (bracketed groups are already atomic tokens).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        chunks.last_mut().unwrap().push(tok);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive shim: expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive shim: expected variant name, found {other}"),
            };
            i += 1;
            let fields = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            (name, fields)
        })
        .collect()
}

// -------------------------------------------------------------- serialize

/// Emits the expression serializing one struct's fields read off `self`.
fn serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let mut out = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_struct(__s, \"{name}\", {})?;\n",
                names.len()
            );
            for f in names {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__st)");
            out
        }
        Fields::Tuple(1) => {
            format!("::serde::ser::Serializer::serialize_newtype_struct(__s, \"{name}\", &self.0)")
        }
        Fields::Tuple(n) => {
            let mut out = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_tuple_struct(__s, \"{name}\", {n})?;\n"
            );
            for i in 0..*n {
                out.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{i})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
            out
        }
        Fields::Unit => {
            format!("::serde::ser::Serializer::serialize_unit_struct(__s, \"{name}\")")
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut out = String::from("match self {\n");
    for (idx, (vname, fields)) in variants.iter().enumerate() {
        match fields {
            Fields::Unit => out.push_str(&format!(
                "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__s, \"{name}\", {idx}u32, \"{vname}\"),\n"
            )),
            Fields::Tuple(1) => out.push_str(&format!(
                "{name}::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__s, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                out.push_str(&format!(
                    "{name}::{vname}({}) => {{\nlet mut __sv = ::serde::ser::Serializer::serialize_tuple_variant(__s, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                    binds.join(", ")
                ));
                for b in &binds {
                    out.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __sv, {b})?;\n"
                    ));
                }
                out.push_str("::serde::ser::SerializeTupleVariant::end(__sv)\n},\n");
            }
            Fields::Named(fnames) => {
                out.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{\nlet mut __sv = ::serde::ser::Serializer::serialize_struct_variant(__s, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                    fnames.join(", "),
                    fnames.len()
                ));
                for f in fnames {
                    out.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{f}\", {f})?;\n"
                    ));
                }
                out.push_str("::serde::ser::SerializeStructVariant::end(__sv)\n},\n");
            }
        }
    }
    out.push('}');
    out
}

// ------------------------------------------------------------ deserialize

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let fields: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: __v.field(\"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", fields.join(", "))
        }
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::de::Deserialize::deserialize(__v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::de::Value::Seq(__items) if __items.len() == {n} => \
                         Ok({name}({})),\n\
                     _ => Err(::serde::de::Error::custom(\
                         \"expected a sequence of length {n} for `{name}`\")),\n\
                 }}",
                items.join(", ")
            )
        }
        Fields::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
    }
}

fn deserialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n")),
            Fields::Tuple(1) => data_arms.push_str(&format!(
                "\"{vname}\" => Ok({name}::{vname}(::serde::de::Deserialize::deserialize(__inner)?)),\n"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::de::Deserialize::deserialize(&__items[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vname}\" => match __inner {{\n\
                         ::serde::de::Value::Seq(__items) if __items.len() == {n} => \
                             Ok({name}::{vname}({})),\n\
                         _ => Err(::serde::de::Error::custom(\
                             \"expected a sequence of length {n} for variant `{vname}`\")),\n\
                     }},\n",
                    items.join(", ")
                ));
            }
            Fields::Named(fnames) => {
                let fields: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("{f}: __inner.field(\"{f}\")?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vname}\" => Ok({name}::{vname} {{ {} }}),\n",
                    fields.join(", ")
                ));
            }
        }
    }
    format!(
        "match __v {{\n\
             ::serde::de::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::de::Error::custom(\
                     format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
             }},\n\
             ::serde::de::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {data_arms}\
                     __other => Err(::serde::de::Error::custom(\
                         format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                 }}\n\
             }},\n\
             _ => Err(::serde::de::Error::custom(\
                 \"expected a string or single-entry map for enum `{name}`\")),\n\
         }}"
    )
}
