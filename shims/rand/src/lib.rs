//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset the workspace's tests use — `rand::rngs::StdRng`
//! seeded with `SeedableRng::seed_from_u64`, plus `Rng::gen_range` over
//! integer/float ranges and `Rng::gen_bool` — on top of a SplitMix64 +
//! xorshift generator. Deterministic for a given seed, which is all the
//! differential tests require; it makes no statistical-quality claims
//! beyond passing them.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, as in real rand.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! impl_sample_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    (self.start as i128 + off) as $ty
                }
            }

            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    let span = (end as i128) - (start as i128) + 1;
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    (start as i128 + off) as $ty
                }
            }
        )*
    };
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let u = unit_f64(rng.next_u64()) as $ty;
                    self.start + (self.end - self.start) * u
                }
            }

            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    let u = unit_f64(rng.next_u64()) as $ty;
                    start + (end - start) * u
                }
            }
        )*
    };
}

impl_sample_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xorshift64*, SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scrambling so small seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-8..8);
            assert!((-8..8).contains(&v));
            let v: u64 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&v));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_not_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "{trues}");
    }
}
