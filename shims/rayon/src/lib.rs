//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to the crates.io registry, so this
//! workspace ships a minimal `rayon` with the same package name and the API
//! subset the codebase uses (`par_iter`/`into_par_iter` → `map` →
//! `collect`); swapping back to the registry crate is a one-line change in
//! each manifest.
//!
//! Unlike real rayon's lazy, work-stealing iterators, this shim is *eager*:
//! `map` runs immediately on `std::thread::scope` workers, splitting the
//! input into one contiguous chunk per available core. Output order matches
//! input order, so `collect` is a plain reassembly. That is exactly the
//! semantics the workspace relies on (uniform-cost parallel maps over
//! experiment grids) and nothing more.

use std::thread;

/// The traits users import; mirrors `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// An eagerly-evaluated stand-in for rayon's parallel iterators: it owns its
/// items and applies each `map` in parallel at the call site.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: par_map(self.items, &f),
        }
    }

    /// Reassembles the (already computed) items into any collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items in the iterator.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the iterator carries no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Conversion into a parallel iterator by value (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion into a parallel iterator over references
/// (`rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// Returns a parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Order-preserving parallel map: contiguous chunks, one scoped thread per
/// chunk, at most `available_parallelism` threads.
fn par_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mapped: Vec<Vec<R>> = thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    mapped.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<i64> = (0..1000)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4, 5];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5, 6]);
        assert_eq!(data.len(), 5);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
