//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to the crates.io registry, so this
//! workspace ships a minimal `serde` with the same package name and the API
//! subset the codebase uses; swapping back to the registry crate is a
//! one-line change in each manifest.
//!
//! * The **serialization** side ([`ser`]) mirrors real serde's trait
//!   shapes — `Serialize`, `Serializer` with the seven compound associated
//!   types, and the `SerializeSeq`/`SerializeStruct`/… traits — so format
//!   crates written against real serde (for example the mini JSON writer in
//!   the integration tests, or the workspace's `serde_json` shim) compile
//!   unchanged.
//! * The **deserialization** side ([`de`]) is deliberately simplified: a
//!   self-describing [`de::Value`] tree plus a `Deserialize` trait over it.
//!   This supports the JSON round-trips the workspace needs without the
//!   full visitor machinery.
//!
//! `#[derive(Serialize, Deserialize)]` comes from the companion
//! `serde_derive` shim and generates impls against these traits.

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
