//! A simplified, self-describing deserialization model.
//!
//! Real serde drives deserialization through visitors; this shim instead
//! parses any input format into a [`Value`] tree and lets types pull
//! themselves out of it. The `#[derive(Deserialize)]` shim generates impls
//! against this trait, and the workspace's `serde_json` shim parses JSON
//! text into [`Value`]s. The enum encodings mirror the serialization side:
//! unit variants as strings, data-carrying variants as single-entry maps.

use std::fmt;

/// A self-describing parsed value (the shim's deserialization currency).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / a missing optional field.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a map entry by key; a missing key reads as [`Value::Null`]
    /// so optional fields deserialize to `None`.
    pub fn field<T: Deserialize>(&self, key: &str) -> Result<T, Error> {
        match self {
            Value::Map(entries) => {
                let v = entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map_or(&Value::Null, |(_, v)| v);
                T::deserialize(v).map_err(|e| Error(format!("field `{key}`: {e}")))
            }
            other => Err(Error(format!(
                "expected a map with field `{key}`, found {other:?}"
            ))),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: a plain message, as in `serde::de::Error::custom`.
#[derive(Debug)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from an arbitrary message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be reconstructed from a parsed [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes `Self` out of the value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

fn unexpected(expected: &str, found: &Value) -> Error {
    Error(format!("expected {expected}, found {}", found.type_name()))
}

macro_rules! impl_deserialize_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Deserialize for $ty {
                fn deserialize(v: &Value) -> Result<Self, Error> {
                    let out = match v {
                        Value::Int(i) => <$ty>::try_from(*i).ok(),
                        Value::UInt(u) => <$ty>::try_from(*u).ok(),
                        other => return Err(unexpected("an integer", other)),
                    };
                    out.ok_or_else(|| {
                        Error(format!("integer out of range for {}", stringify!($ty)))
                    })
                }
            }
        )*
    };
}

impl_deserialize_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_deserialize_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Deserialize for $ty {
                fn deserialize(v: &Value) -> Result<Self, Error> {
                    match v {
                        Value::Float(f) => Ok(*f as $ty),
                        Value::Int(i) => Ok(*i as $ty),
                        Value::UInt(u) => Ok(*u as $ty),
                        other => Err(unexpected("a number", other)),
                    }
                }
            }
        )*
    };
}

impl_deserialize_float!(f32, f64);

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("a bool", other)),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("a string", other)),
        }
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("a single-character string", other)),
        }
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(unexpected("null", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(unexpected("a sequence", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! impl_deserialize_tuple {
    ($len:literal => $($idx:tt $name:ident),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(unexpected(concat!("a sequence of length ", $len), other)),
                }
            }
        }
    };
}

impl_deserialize_tuple!(1 => 0 A);
impl_deserialize_tuple!(2 => 0 A, 1 B);
impl_deserialize_tuple!(3 => 0 A, 1 B, 2 C);
impl_deserialize_tuple!(4 => 0 A, 1 B, 2 C, 3 D);
