//! Serialization traits mirroring real serde's `ser` module (the subset
//! this workspace exercises: every scalar method, strings, options, units,
//! newtypes, sequences, tuples, maps, structs and all four enum variant
//! shapes).

/// Trait for serialization errors, as in real serde.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any format supported by
/// a [`Serializer`].
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format that can serialize any data structure supported by serde.
///
/// Method-for-method compatible with real serde's `Serializer` for the
/// forms the workspace's derives generate.
pub trait Serializer: Sized {
    /// Output produced by a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Compound state for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound state for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Compound serialization state for sequences.
pub trait SerializeSeq {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serialization state for tuples.
pub trait SerializeTuple {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serialization state for tuple structs.
pub trait SerializeTupleStruct {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serialization state for tuple enum variants.
pub trait SerializeTupleVariant {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serialization state for maps.
pub trait SerializeMap {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serialization state for structs.
pub trait SerializeStruct {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serialization state for struct enum variants.
pub trait SerializeStructVariant {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_scalar {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                    s.$method(*self)
                }
            }
        )*
    };
}

impl_serialize_scalar! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

macro_rules! impl_serialize_tuple {
    ($len:literal => $($idx:tt $name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let mut t = s.serialize_tuple($len)?;
                $(SerializeTuple::serialize_element(&mut t, &self.$idx)?;)+
                t.end()
            }
        }
    };
}

impl_serialize_tuple!(1 => 0 A);
impl_serialize_tuple!(2 => 0 A, 1 B);
impl_serialize_tuple!(3 => 0 A, 1 B, 2 C);
impl_serialize_tuple!(4 => 0 A, 1 B, 2 C, 3 D);
