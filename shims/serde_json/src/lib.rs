//! Offline stand-in for `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! workspace's `serde` shim. The serializer implements the shim's
//! serde-compatible `Serializer` trait; the parser is a recursive-descent
//! JSON reader producing `serde::de::Value` trees that the shim's
//! simplified `Deserialize` trait consumes.

use serde::de::{Deserialize, Value};
use serde::ser::{self, Serialize};
use std::fmt::Write as _;

/// Serialization/deserialization error (a plain message).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut JsonSer { out: &mut out })?;
    Ok(out)
}

/// Serializes a value to indented JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Parses JSON text into any type implementing the shim's `Deserialize`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&value).map_err(|e| Error(e.to_string()))
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON has no NaN/Infinity; they serialize as `null`, as real serde_json
/// does. Whole-valued floats print without a decimal point (the shim's
/// `Deserialize` for floats accepts integers, so round-trips still work).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

struct JsonSer<'a> {
    out: &'a mut String,
}

macro_rules! ser_scalar {
    ($name:ident, $ty:ty) => {
        fn $name(self, v: $ty) -> Result<(), Error> {
            let _ = write!(self.out, "{v}");
            Ok(())
        }
    };
}

impl<'a, 'b> ser::Serializer for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a, 'b>;
    type SerializeTuple = Compound<'a, 'b>;
    type SerializeTupleStruct = Compound<'a, 'b>;
    type SerializeTupleVariant = Compound<'a, 'b>;
    type SerializeMap = Compound<'a, 'b>;
    type SerializeStruct = Compound<'a, 'b>;
    type SerializeStructVariant = Compound<'a, 'b>;

    ser_scalar!(serialize_i8, i8);
    ser_scalar!(serialize_i16, i16);
    ser_scalar!(serialize_i32, i32);
    ser_scalar!(serialize_i64, i64);
    ser_scalar!(serialize_u8, u8);
    ser_scalar!(serialize_u16, u16);
    ser_scalar!(serialize_u32, u32);
    ser_scalar!(serialize_u64, u64);
    ser_scalar!(serialize_bool, bool);

    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        self.serialize_f64(f64::from(v))
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        write_f64(self.out, v);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), Error> {
        self.serialize_str(&v.to_string())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        escape_into(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
        let mut seq = ser::Serializer::serialize_seq(self, Some(v.len()))?;
        for b in v {
            ser::SerializeSeq::serialize_element(&mut seq, b)?;
        }
        ser::SerializeSeq::end(seq)
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Error> {
        v.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _: &'static str) -> Result<(), Error> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        v.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        v.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _: Option<usize>) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            close: "]",
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a, 'b>, Error> {
        let _ = len;
        ser::Serializer::serialize_seq(self, None)
    }

    fn serialize_tuple_struct(
        self,
        _: &'static str,
        len: usize,
    ) -> Result<Compound<'a, 'b>, Error> {
        ser::Serializer::serialize_tuple(self, len)
    }

    fn serialize_tuple_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        _: usize,
    ) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            close: "]}",
        })
    }

    fn serialize_map(self, _: Option<usize>) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            close: "}",
        })
    }

    fn serialize_struct(self, _: &'static str, _: usize) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            close: "}",
        })
    }

    fn serialize_struct_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        _: usize,
    ) -> Result<Compound<'a, 'b>, Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            close: "}}",
        })
    }
}

/// In-progress compound value (sequence, map, struct or variant payload).
pub struct Compound<'a, 'b> {
    ser: &'b mut JsonSer<'a>,
    first: bool,
    close: &'static str,
}

impl Compound<'_, '_> {
    fn comma(&mut self) {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
    }

    fn finish(self) -> Result<(), Error> {
        self.ser.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeSeq for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        self.comma();
        v.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeTuple for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, v)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeTupleStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, v)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeTupleVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, v)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeMap for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, k: &T) -> Result<(), Error> {
        self.comma();
        k.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        self.ser.out.push(':');
        v.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        self.comma();
        escape_into(self.ser.out, key);
        self.ser.out.push(':');
        v.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeStructVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        ser::SerializeStruct::serialize_field(self, key, v)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

// ------------------------------------------------------------------ parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad codepoint {code:#x}")))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

// ----------------------------------------------------------------- pretty

/// Re-indents compact JSON produced by [`to_string`] (which never emits
/// raw newlines outside escaped strings).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for c in compact.chars() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                depth += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}
