//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark a handful of timed batches and prints the
//! fastest per-iteration wall-clock time. No statistics, plots or baseline
//! comparisons — just enough for `cargo bench` to build, run, and emit
//! usable numbers in this offline environment.

use std::fmt::Display;
use std::time::Instant;

/// Opaque to the optimizer; forwards to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Declares how a benchmark's throughput is counted (printed as-is).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` in timed batches and records the best per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate a batch size that takes ~10 ms, then time 5 batches.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed.as_millis() >= 10 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
        }
        self.best_ns_per_iter = best;
    }
}

fn print_result(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let ns = b.best_ns_per_iter;
    let time = if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{:.3} ms", ns / 1e6)
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns * 1e-9) / 1e6;
            println!("bench {id:<50} {time:>12}  ({rate:.1} Melem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns * 1e-9) / 1e6;
            println!("bench {id:<50} {time:>12}  ({rate:.1} MB/s)");
        }
        None => println!("bench {id:<50} {time:>12}"),
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            best_ns_per_iter: f64::NAN,
        };
        f(&mut b);
        print_result(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            best_ns_per_iter: f64::NAN,
        };
        f(&mut b);
        print_result(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: Display, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            best_ns_per_iter: f64::NAN,
        };
        f(&mut b, input);
        print_result(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
