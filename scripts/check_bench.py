#!/usr/bin/env python3
"""CI perf-regression gate: compare fresh BENCH_*.json against committed
baselines with a relative tolerance.

Every criterion bench in this workspace writes a machine-readable
`BENCH_<name>.json` at the repo root; known-good copies are committed
under `benchmarks/baselines/`. This script walks both JSON trees in
parallel and fails (exit 1) when any performance field regresses by more
than the tolerance (default +/-30%):

* higher-is-better fields: `*_per_sec`, `*_per_watt`, `speedup*` — fail
  when fresh < baseline * (1 - tolerance);
* lower-is-better fields: `*_s`, `seconds_per_run`, `*_ratio` — fail when
  fresh > baseline * (1 + tolerance).

Non-performance fields (names, request counts, MAC counts) are ignored.
List entries carrying a `"name"` key are matched by name, so reordering
rows never trips the gate; a baseline row or field missing from the fresh
output *does* fail (structure changes require a deliberate baseline
update).

`--self-test` synthesizes a 50% slowdown from every committed baseline
(throughput halved, times doubled) and asserts the gate rejects it, then
asserts an identical copy passes — run in CI so the gate itself cannot
silently rot.

Stdlib only; no third-party imports.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def direction(key: str) -> str | None:
    """'higher', 'lower', or None when the field is not a perf metric."""
    if key.endswith("_per_sec") or key.endswith("_per_watt") or key.startswith("speedup"):
        return "higher"
    if key.endswith("_s") or key == "seconds_per_run" or key.endswith("_ratio"):
        return "lower"
    return None


def compare(fresh, base, path: str, tolerance: float, failures: list[str]) -> None:
    """Recursively compare `fresh` against `base`, appending regressions."""
    if isinstance(base, dict):
        if not isinstance(fresh, dict):
            failures.append(f"{path}: baseline is an object, fresh is {type(fresh).__name__}")
            return
        for key, base_val in base.items():
            if key not in fresh:
                failures.append(f"{path}.{key}: present in baseline, missing from fresh output")
                continue
            compare(fresh[key], base_val, f"{path}.{key}", tolerance, failures)
    elif isinstance(base, list):
        if not isinstance(fresh, list):
            failures.append(f"{path}: baseline is a list, fresh is {type(fresh).__name__}")
            return
        by_name = {row.get("name"): row for row in fresh if isinstance(row, dict) and "name" in row}
        for i, base_row in enumerate(base):
            if isinstance(base_row, dict) and "name" in base_row:
                name = base_row["name"]
                if name not in by_name:
                    failures.append(f"{path}[{name}]: baseline row missing from fresh output")
                    continue
                compare(by_name[name], base_row, f"{path}[{name}]", tolerance, failures)
            elif i < len(fresh):
                compare(fresh[i], base_row, f"{path}[{i}]", tolerance, failures)
            else:
                failures.append(f"{path}[{i}]: baseline entry missing from fresh output")
    elif isinstance(base, (int, float)) and not isinstance(base, bool):
        key = path.rsplit(".", 1)[-1]
        sense = direction(key)
        if sense is None or not isinstance(fresh, (int, float)) or base <= 0:
            return
        if sense == "higher" and fresh < base * (1.0 - tolerance):
            failures.append(
                f"{path}: {fresh:g} is {100 * (1 - fresh / base):.0f}% below baseline {base:g}"
            )
        elif sense == "lower" and fresh > base * (1.0 + tolerance):
            failures.append(
                f"{path}: {fresh:g} is {100 * (fresh / base - 1):.0f}% above baseline {base:g}"
            )


def check_file(fresh_path: Path, base_path: Path, tolerance: float) -> list[str]:
    base = json.loads(base_path.read_text())
    if not fresh_path.exists():
        return [f"{fresh_path.name}: fresh bench output not found (did the bench run?)"]
    fresh = json.loads(fresh_path.read_text())
    failures: list[str] = []
    compare(fresh, base, fresh_path.stem, tolerance, failures)
    return failures


def degrade(node, factor: float):
    """A copy of `node` that is `factor`x slower on every perf field."""
    if isinstance(node, dict):
        out = {}
        for key, val in node.items():
            sense = direction(key)
            if sense and isinstance(val, (int, float)) and not isinstance(val, bool):
                out[key] = val / factor if sense == "higher" else val * factor
            else:
                out[key] = degrade(val, factor)
        return out
    if isinstance(node, list):
        return [degrade(v, factor) for v in node]
    return node


def self_test(baseline_dir: Path, tolerance: float) -> int:
    """Verify the gate: identical JSON passes, a 50% slowdown fails."""
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"self-test: no baselines under {baseline_dir}", file=sys.stderr)
        return 2
    for base_path in baselines:
        base = json.loads(base_path.read_text())
        clean: list[str] = []
        compare(base, base, base_path.stem, tolerance, clean)
        if clean:
            print(f"self-test FAILED: identical {base_path.name} flagged: {clean}", file=sys.stderr)
            return 1
        slowed = degrade(base, 2.0)  # 50% slowdown: throughput halves, times double
        failures: list[str] = []
        compare(slowed, base, base_path.stem, tolerance, failures)
        if not failures:
            print(
                f"self-test FAILED: 50% slowdown of {base_path.name} passed the gate",
                file=sys.stderr,
            )
            return 1
        print(f"self-test: {base_path.name}: slowdown caught ({len(failures)} regressions)")
    print(f"self-test OK across {len(baselines)} baselines")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("benchmarks/baselines"),
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative regression before failing (default 0.30)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate catches a synthetic 50%% slowdown, then exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.baseline_dir, args.tolerance)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {args.baseline_dir}", file=sys.stderr)
        return 2
    total_failures: list[str] = []
    for base_path in baselines:
        failures = check_file(args.fresh_dir / base_path.name, base_path, args.tolerance)
        status = "FAIL" if failures else "ok"
        print(f"{base_path.name}: {status}")
        total_failures.extend(failures)
    if total_failures:
        print(f"\n{len(total_failures)} perf regression(s) beyond ±{args.tolerance:.0%}:")
        for f in total_failures:
            print(f"  {f}")
        return 1
    print(f"all {len(baselines)} bench files within ±{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
