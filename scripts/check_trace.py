#!/usr/bin/env python3
"""CI trace validator: check a Chrome trace-event JSON file produced by
`bpvec-obs` for structural well-formedness.

The exporters in `crates/obs` promise Perfetto-loadable output. This script
verifies the promise without a browser in the loop:

* the file parses as JSON and carries a `traceEvents` list;
* every event is an object with the required `ph`, `ts`, and `pid` fields,
  a known phase code (B/E/i/X/C/M), and a non-negative finite timestamp;
* complete (`X`) events carry a non-negative `dur`;
* instant (`i`) events carry a scope `s`;
* per `(pid, tid)` track, duration events nest properly: every `B` has a
  matching same-name `E` at a timestamp no earlier than its begin, and no
  track ends with an open span.

`--self-test` validates an embedded known-good trace and asserts several
embedded malformed traces are rejected — run in CI so the validator itself
cannot silently rot.

Stdlib only; no third-party imports.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

KNOWN_PHASES = {"B", "E", "i", "X", "C", "M"}


def validate(doc) -> list[str]:
    """All structural errors in a parsed trace document (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["`traceEvents` must be a list"]
    stacks: dict[tuple, list[tuple[str, float]]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown or missing phase {ph!r}")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            errors.append(f"{where}: missing numeric `ts`")
            continue
        if not math.isfinite(ts) or ts < 0:
            errors.append(f"{where}: `ts` {ts!r} must be finite and non-negative")
            continue
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: missing integer `pid`")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing non-empty `name`")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(f"{where}: X event needs a non-negative `dur`, got {dur!r}")
        elif ph == "i":
            if not isinstance(ev.get("s"), str):
                errors.append(f"{where}: instant event needs a scope `s`")
        track = (ev["pid"], ev.get("tid", 0))
        stack = stacks.setdefault(track, [])
        if ph == "B":
            stack.append((name, ts))
        elif ph == "E":
            if not stack:
                errors.append(f"{where}: E `{name}` on track {track} with no open span")
                continue
            open_name, open_ts = stack.pop()
            if open_name != name:
                errors.append(
                    f"{where}: E `{name}` closes span `{open_name}` on track {track}"
                )
            if ts < open_ts:
                errors.append(
                    f"{where}: span `{name}` on track {track} has negative duration "
                    f"({open_ts} -> {ts})"
                )
    for track, stack in sorted(stacks.items()):
        for name, ts in stack:
            errors.append(f"track {track}: span `{name}` opened at {ts} never closes")
    return errors


def check_file(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate(doc)


GOOD = {
    "displayTimeUnit": "ms",
    "traceEvents": [
        {"name": "process_name", "ph": "M", "ts": 0, "pid": 0, "tid": 0, "args": {"name": "r0"}},
        {"name": "arrive", "ph": "i", "ts": 10.5, "pid": 0, "tid": 1, "s": "t", "args": {}},
        {"name": "exec", "ph": "B", "ts": 11, "pid": 0, "tid": 0, "args": {}},
        {"name": "exec", "ph": "E", "ts": 15, "pid": 0, "tid": 0, "args": {}},
        {"name": "queue", "ph": "X", "ts": 10.5, "dur": 0.5, "pid": 0, "tid": 1, "args": {}},
        {"name": "queue_depth", "ph": "C", "ts": 11, "pid": 0, "tid": 0, "args": {"queue_depth": 3}},
    ],
}

BAD = [
    ("unmatched begin", {"traceEvents": [{"name": "a", "ph": "B", "ts": 1, "pid": 0}]}),
    ("stray end", {"traceEvents": [{"name": "a", "ph": "E", "ts": 1, "pid": 0}]}),
    (
        "name mismatch",
        {
            "traceEvents": [
                {"name": "a", "ph": "B", "ts": 1, "pid": 0},
                {"name": "b", "ph": "E", "ts": 2, "pid": 0},
            ]
        },
    ),
    (
        "negative duration",
        {
            "traceEvents": [
                {"name": "a", "ph": "B", "ts": 5, "pid": 0},
                {"name": "a", "ph": "E", "ts": 1, "pid": 0},
            ]
        },
    ),
    ("missing ts", {"traceEvents": [{"name": "a", "ph": "i", "pid": 0, "s": "t"}]}),
    ("missing pid", {"traceEvents": [{"name": "a", "ph": "i", "ts": 1, "s": "t"}]}),
    ("unknown phase", {"traceEvents": [{"name": "a", "ph": "Z", "ts": 1, "pid": 0}]}),
    ("X without dur", {"traceEvents": [{"name": "a", "ph": "X", "ts": 1, "pid": 0}]}),
    ("events not a list", {"traceEvents": {}}),
]


def self_test() -> int:
    errors = validate(GOOD)
    if errors:
        print(f"self-test FAILED: known-good trace rejected: {errors}", file=sys.stderr)
        return 1
    for label, doc in BAD:
        if not validate(doc):
            print(f"self-test FAILED: malformed trace ({label}) passed", file=sys.stderr)
            return 1
    print(f"self-test OK: good trace accepted, {len(BAD)} malformed traces rejected")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="*", type=Path, help="trace JSON files to validate")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the validator accepts/rejects embedded fixtures, then exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.traces:
        print("no trace files given (pass paths or --self-test)", file=sys.stderr)
        return 2
    total = 0
    for path in args.traces:
        errors = check_file(path)
        status = "FAIL" if errors else "ok"
        print(f"{path}: {status}")
        for e in errors[:20]:
            print(f"  {e}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        total += len(errors)
    if total:
        print(f"\n{total} structural error(s)")
        return 1
    print(f"all {len(args.traces)} trace file(s) well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
