//! Quantized inference on the BPVeC systolic array.
//!
//! Run with `cargo run --example quantized_inference`.
//!
//! Takes a small convolution layer with synthetic float weights, quantizes
//! activations and weights to 8-bit and 4-bit, lowers the convolution to a
//! GEMM (im2col) and executes it bit-true on the cycle-counted systolic
//! array of CVUs — demonstrating the full path a real deployment takes, and
//! the cycle savings heterogeneous quantization buys.

use bpvec::core::{BitWidth, Signedness};
use bpvec::dnn::quant::quantize_fitted;
use bpvec::dnn::{reference, Tensor};
use bpvec::sim::systolic::{ArrayConfig, SystolicArray};

fn synth(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
    (0..n).map(f).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A ResNet-style 3x3 convolution: 16 -> 16 channels on a 12x12 map.
    let (ic, oc, k, h) = (16usize, 16usize, 3usize, 12usize);
    let oh = h - k + 1;
    let input_f = synth(ic * h * h, |i| {
        ((i * 2654435761 % 997) as f32 / 997.0) - 0.5
    });
    let weight_f = synth(oc * ic * k * k, |i| {
        (((i * 40503 + 17) % 911) as f32 / 911.0 - 0.5) * 0.4
    });

    let arr = SystolicArray::new(ArrayConfig::paper_default());
    println!(
        "systolic array: {}x{} CVUs, {} MAC-equivalents",
        arr.config().rows,
        arr.config().cols,
        arr.config().rows * arr.config().cols * arr.config().cvu.lanes
    );

    for bits in [8u32, 4] {
        let bw = BitWidth::new(bits)?;
        let (x_q, xp) = quantize_fitted(&[ic, h, h], &input_f, bw, Signedness::Signed);
        let (w_q, wp) = quantize_fitted(&[oc, ic, k, k], &weight_f, bw, Signedness::Signed);

        // Reference integer convolution.
        let ref_out = reference::conv2d(&x_q, &w_q, (1, 1), (0, 0));

        // Lower to GEMM via im2col and run on the array.
        let cols = Tensor::from_fn(&[ic * k * k, oh * oh], |idx| {
            let (row, col) = (idx[0], idx[1]);
            let (c, ky, kx) = (row / (k * k), (row / k) % k, row % k);
            let (oy, ox) = (col / oh, col % oh);
            x_q[&[c, oy + ky, ox + kx]]
        });
        let mut wmat = w_q.clone();
        wmat.reshape(&[oc, ic * k * k]);
        let run = arr.gemm(&wmat, &cols, bw, bw, Signedness::Signed)?;

        let mut expect = ref_out.clone();
        expect.reshape(&[oc, oh * oh]);
        assert_eq!(run.output, expect, "systolic result must be bit-true");

        // Quantization error against the float convolution.
        let scale = xp.scale * wp.scale;
        let float_ref: f64 = {
            // Spot check one output to show the dequantized value is sane.
            f64::from(ref_out[&[0, 0, 0]]) * f64::from(scale)
        };
        println!(
            "\nINT{bits}: {} cycles, {:.0} MACs/cycle, out[0,0,0] = {} (~{:.4} dequantized)",
            run.cycles,
            run.macs_per_cycle(),
            ref_out[&[0, 0, 0]],
            float_ref
        );
    }
    println!("\n4-bit execution recomposes the same CVUs into 4 clusters -> ~4x fewer cycles");
    Ok(())
}
