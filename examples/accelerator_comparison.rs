//! Full accelerator comparison across the paper's design space.
//!
//! Run with `cargo run --example accelerator_comparison`.
//!
//! Simulates all six Table I networks on the three ASIC platforms
//! (TPU-like, BitFusion, BPVeC) under both memory systems and both bitwidth
//! policies — the complete grid behind Figures 5-8 — and prints latency,
//! energy and perf/W per configuration.

use bpvec::dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec::sim::{simulate, AcceleratorConfig, DramSpec, SimConfig};

fn main() {
    for (policy, label) in [
        (BitwidthPolicy::Homogeneous8, "homogeneous 8-bit"),
        (BitwidthPolicy::Heterogeneous, "heterogeneous (Table I bitwidths)"),
    ] {
        println!("=== {label} ===");
        println!(
            "{:<14} {:<10} {:<6} {:>12} {:>12} {:>12} {:>10}",
            "network", "design", "mem", "latency ms", "energy mJ", "GOPS/W", "mem-bound"
        );
        for id in NetworkId::ALL {
            let net = Network::build(id, policy);
            for accel in [
                AcceleratorConfig::tpu_like(),
                AcceleratorConfig::bitfusion(),
                AcceleratorConfig::bpvec(),
            ] {
                for dram in [DramSpec::ddr4(), DramSpec::hbm2()] {
                    let r = simulate(&net, &SimConfig::new(accel, dram));
                    println!(
                        "{:<14} {:<10} {:<6} {:>12.3} {:>12.3} {:>12.0} {:>9.0}%",
                        id.name(),
                        accel.design.name(),
                        dram.name,
                        r.latency_s * 1e3,
                        r.energy_j * 1e3,
                        r.gops_per_watt(),
                        100.0 * r.memory_bound_fraction()
                    );
                }
            }
        }
        println!();
    }
}
