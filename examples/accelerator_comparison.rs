//! Full accelerator comparison across the paper's design space, as one
//! `Scenario` per bitwidth policy.
//!
//! Run with `cargo run --example accelerator_comparison`
//! (add `--csv` or `--json` for machine-readable output).
//!
//! Each scenario is the complete grid behind Figures 5-8 — all six Table I
//! networks on the three ASIC platforms (TPU-like, BitFusion, BPVeC) under
//! both memory systems — declared in a handful of lines and evaluated in
//! parallel. The report prints latency, energy and perf/W per cell, then
//! the geomean speedups of every column against the TPU-like + DDR4
//! baseline.

use bpvec::dnn::{BitwidthPolicy, NetworkId};
use bpvec::sim::{AcceleratorConfig, DramSpec, Report, Scenario, Workload};

fn grid(policy: BitwidthPolicy, label: &str) -> Report {
    Scenario::new(label)
        .platform(AcceleratorConfig::tpu_like())
        .platform(AcceleratorConfig::bitfusion())
        .platform(AcceleratorConfig::bpvec())
        .memory(DramSpec::ddr4())
        .memory(DramSpec::hbm2())
        .workloads(Workload::table1(policy))
        .run()
}

fn main() {
    let reports = [
        grid(BitwidthPolicy::Homogeneous8, "homogeneous 8-bit"),
        grid(
            BitwidthPolicy::Heterogeneous,
            "heterogeneous (Table I bitwidths)",
        ),
    ];
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--csv") {
        // One header for both panels; the policy column tells them apart.
        print!("{}", bpvec_bench::concat_report_csv(&reports));
        return;
    }
    if args.iter().any(|a| a == "--json") {
        for r in &reports {
            println!("{}", r.to_json());
        }
        return;
    }
    for report in &reports {
        println!("=== {} ===", report.scenario);
        println!(
            "{:<14} {:<10} {:<6} {:>12} {:>12} {:>12}",
            "network", "design", "mem", "latency ms", "energy mJ", "GOPS/W"
        );
        for id in NetworkId::ALL {
            for col in report.columns() {
                let cell = report.cell(&col.platform, &col.memory, id).unwrap();
                println!(
                    "{:<14} {:<10} {:<6} {:>12.3} {:>12.3} {:>12.0}",
                    id.name(),
                    col.platform,
                    col.memory,
                    cell.measurement.latency_s * 1e3,
                    cell.measurement.energy_j * 1e3,
                    cell.measurement.gops_per_watt,
                );
            }
        }
        println!("\ngeomean speedups vs {}:", report.baseline);
        for c in report.comparisons() {
            println!(
                "  {:<22} {:>6.2}x speedup, {:>6.2}x energy",
                c.evaluated, c.geomean_speedup, c.geomean_energy
            );
        }
        println!();
    }
}
