//! Transformer workloads: per-layer precision on a BERT-class stack,
//! through both the evaluation grid and the serving simulator.
//!
//! Run with `cargo run --release --example transformer_sweep`.
//!
//! The attention block gives bit-flexible hardware a new knob the CNN-era
//! workloads never had: the GEMM-shaped layers (QKV/output projections,
//! FFNs, QK^T, attention·V) are precision-bearing, while softmax/LayerNorm/
//! GELU are memory-bound byte-movers that gain nothing from narrowing. A
//! kind-aware per-layer policy therefore keeps 8-bit activations, drops
//! weights and the KV cache to 4 bits on every MAC-bearing layer, and
//! leaves the normalization ops alone.
//!
//! Two assertions gate CI:
//!
//! * **evaluation** — at every sequence length, the per-layer policy beats
//!   uniform 8-bit BERT throughput on the composable design;
//! * **serving** — under matched closed-loop traffic (same client count,
//!   same prefill/decode mix), the per-layer policy's throughput beats
//!   uniform 8-bit.

use bpvec::core::BitWidth;
use bpvec::dnn::{BitwidthPolicy, LayerKind, LayerPrecision, Network, NetworkId, PrecisionPolicy};
use bpvec::serve::{
    ArrivalProcess, BatchPolicy, ClusterSpec, RequestMix, ServingScenario, TrafficSpec,
};
use bpvec::sim::{AcceleratorConfig, DramSpec, Scenario, Workload};

fn main() {
    // --- A kind-aware per-layer policy for the BERT-class stack ---------
    let reference = Network::build(NetworkId::BertBase, BitwidthPolicy::Homogeneous8);
    let per_layer: Vec<LayerPrecision> = reference
        .layers
        .iter()
        .map(|l| match l.kind {
            // Memory-bound ops: cost is byte movement, not MACs.
            LayerKind::Softmax { .. } | LayerKind::LayerNorm { .. } | LayerKind::Gelu { .. } => {
                LayerPrecision::uniform(BitWidth::INT8)
            }
            // GEMM-shaped ops: 8-bit activations over 4-bit weights/KV.
            _ => LayerPrecision::new(BitWidth::INT8, BitWidth::INT4),
        })
        .collect();
    let het = PrecisionPolicy::per_layer(per_layer);
    let hom8: PrecisionPolicy = BitwidthPolicy::Homogeneous8.into();

    // --- Scenario: the sequence axis × the precision axis ---------------
    let report = Scenario::new("transformer sweep")
        .platform(AcceleratorConfig::bpvec())
        .workload(Workload::new(NetworkId::BertBase, hom8.clone()))
        .memory(DramSpec::ddr4())
        .precision(hom8.clone())
        .precision(het.clone())
        .seq_lens([64, 256])
        .run();

    println!("BERT-Base on BPVeC — throughput by precision and sequence length:");
    println!(
        "{:<12} {:>6} {:>12} {:>12}",
        "policy", "seq", "GOPS", "lat ms"
    );
    let cell = |policy: &PrecisionPolicy, seq: usize| {
        report
            .cells
            .iter()
            .find(|c| c.workload.policy == *policy && c.workload.seq_len == Some(seq))
            .expect("cell exists")
    };
    for seq in [64usize, 256] {
        for (name, p) in [("uniform8", &hom8), ("per-layer", &het)] {
            let c = cell(p, seq);
            println!(
                "{name:<12} {seq:>6} {:>12.1} {:>12.3}",
                c.measurement.gops(),
                c.measurement.latency_s * 1e3
            );
        }
        let (u, h) = (cell(&hom8, seq), cell(&het, seq));
        assert!(
            h.measurement.gops() > u.measurement.gops(),
            "per-layer precision must beat uniform 8-bit at seq {seq}"
        );
    }
    println!("\nScenario CSV (seq column):");
    print!("{}", report.to_csv());

    // --- ServingScenario: matched prefill/decode traffic ----------------
    // Closed-loop clients make "matched traffic" exact: both precision
    // variants serve the same client population over the same mix, so the
    // throughput comparison is the service-speed ratio.
    let serving = ServingScenario::new("transformer serving")
        .platform(AcceleratorConfig::bpvec())
        .policy(BatchPolicy::immediate())
        .cluster(ClusterSpec::single())
        .traffic(TrafficSpec::new(
            "chat",
            ArrivalProcess::closed_loop(4, 0.0),
            RequestMix::prefill_decode(
                Workload::new(NetworkId::BertBase, BitwidthPolicy::Homogeneous8),
                128,
                1.0,
                3.0,
            ),
            400,
        ))
        .precision(hom8.clone())
        .precision(het.clone())
        .run();

    println!("\nServing under matched closed-loop traffic (prefill128 + decode128):");
    println!(
        "{:<12} {:>10} {:>10} {:>28}",
        "precision", "thr rps", "p99 ms", "classes"
    );
    for c in &serving.cells {
        let name = if c.precision == hom8.to_string() {
            "uniform8"
        } else {
            "per-layer"
        };
        println!(
            "{name:<12} {:>10.1} {:>10.2} {:>28}",
            c.metrics.throughput_rps,
            c.metrics.latency.p99_s * 1e3,
            c.classes
        );
    }
    assert_eq!(serving.cells.len(), 2);
    let thr = |p: &PrecisionPolicy| {
        serving
            .cells
            .iter()
            .find(|c| c.precision == p.to_string())
            .expect("cell exists")
            .metrics
            .throughput_rps
    };
    let (u, h) = (thr(&hom8), thr(&het));
    println!(
        "\nPer-layer precision serves {h:.1} rps vs uniform-8b {u:.1} rps ({:.2}x) \
         on the same clients",
        h / u
    );
    assert!(
        h > u,
        "per-layer precision must beat uniform-8b serving throughput ({h:.1} vs {u:.1} rps)"
    );
    println!("\nServing CSV (seq & classes columns):");
    print!("{}", serving.to_csv());
    println!("OK: heterogeneous transformer precision pays at matched traffic");
}
