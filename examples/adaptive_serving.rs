//! Adaptive precision serving: surviving a 2× step overload by degrading
//! precision instead of dropping requests.
//!
//! Run with `cargo run --release --example adaptive_serving`.
//!
//! The paper's bit-flexible hardware can trade precision for throughput on
//! demand — AlexNet on BPVeC serves ~3.4× more requests per second at
//! uniform 4-bit and ~10× at uniform 2-bit than at 8-bit. This example
//! puts that knob in a feedback loop: a step-overload trace (steady 0.6×
//! capacity, then a burst at 2× the static-8b capacity, then steady again)
//! is served once with a pinned 8-bit policy and once under the adaptive
//! controller walking an 8b → 4b → 2b degradation ladder.
//!
//! Two assertions gate CI:
//!
//! * **goodput** — the adaptive ladder's SLA goodput is at least 2× the
//!   static-8b baseline under the overload trace;
//! * **fidelity** — before the overload hits, at least 80% of requests are
//!   served at full precision (the controller does not degrade a healthy
//!   system).
//! * **observability** — replaying the overload on a 1→3 autoscaled cluster
//!   under a trace sink yields a well-formed Chrome trace that reaches all
//!   three replicas and records rung-switch and scale instants. Pass
//!   `--trace-out <path>` to write the trace JSON and load it at
//!   <https://ui.perfetto.dev>.

use bpvec::dnn::{BitwidthPolicy, NetworkId, PrecisionPolicy};
use bpvec::obs::{validate_spans, MemorySink, Phase};
use bpvec::serve::{
    run_serving_adaptive, run_serving_adaptive_traced, AdaptiveSpec, ArrivalProcess,
    AutoscalerConfig, BatchPolicy, ClusterSpec, ControllerConfig, RequestMix, ServiceModel,
    ServingScenario, TrafficSpec,
};
use bpvec::sim::{AcceleratorConfig, BatchRegime, DramSpec, Evaluator, Workload};

fn main() {
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out takes a file path"));
            }
            other => panic!("unknown argument `{other}` (expected --trace-out PATH)"),
        }
    }

    let accel = AcceleratorConfig::bpvec();
    let dram = DramSpec::ddr4();
    let w = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);

    // Static-8b service capacity at the scheduler's batch cap — the
    // baseline the overload is sized against.
    let batched = |policy: &str, b: u64| {
        let p: PrecisionPolicy = policy.parse().expect("parses");
        let wp = w
            .clone()
            .with_policy(p)
            .with_batching(BatchRegime::fixed(b));
        let netp = wp.build();
        accel.evaluate(&wp, &netp, &dram).latency_s
    };
    let cap0 = 1.0 / batched("hom8", 16);
    println!("AlexNet on BPVeC — batched (16) capacity by precision:");
    for p in ["hom8", "int4", "int2"] {
        println!("  {p:>5}: {:>6.0} rps", 1.0 / batched(p, 16));
    }

    // The step-overload trace: 0.6× capacity, a burst at 2.0× capacity,
    // then 0.6× again so the controller can recover.
    let (n_pre, n_over, n_post) = (1_500usize, 3_000, 1_500);
    let lo_gap = 1.0 / (0.6 * cap0);
    let hi_gap = 1.0 / (2.0 * cap0);
    let t_step = n_pre as f64 * lo_gap;
    let gaps: Vec<f64> = std::iter::repeat_n(lo_gap, n_pre)
        .chain(std::iter::repeat_n(hi_gap, n_over))
        .chain(std::iter::repeat_n(lo_gap, n_post))
        .collect();
    let traffic = TrafficSpec::new(
        "step-2x",
        ArrivalProcess::trace(gaps),
        RequestMix::single(w.clone()),
        (n_pre + n_over + n_post) as u64,
    );

    let sla_s = 0.025;
    let ladder = PrecisionPolicy::degradation_ladder(
        ["hom8", "int4", "int2"].map(|s| s.parse::<PrecisionPolicy>().expect("parses")),
    )
    .expect("the ladder narrows monotonically");
    let spec = AdaptiveSpec::new(ladder).with_controller(
        ControllerConfig::new(0.020)
            .with_depths(4, 24)
            .with_target_p99(sla_s),
    );

    let policy = BatchPolicy::deadline(16, 0.008);
    let cluster = ClusterSpec::single();
    let seed = 0xADA7;
    let report = ServingScenario::new("adaptive_serving")
        .platform(accel)
        .policy(policy)
        .cluster(cluster)
        .traffic(traffic.clone())
        .static_control()
        .control(spec.clone())
        .sla_s(sla_s)
        .seed(seed)
        .run();

    println!(
        "\n{:<42} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "control", "thr rps", "goodput", "p99 ms", "SLA %", "full %"
    );
    for cell in &report.cells {
        let m = &cell.metrics;
        println!(
            "{:<42} {:>9.1} {:>9.1} {:>8.1} {:>8.1} {:>8.1}",
            cell.control,
            m.throughput_rps,
            m.goodput_rps,
            m.latency.p99_s * 1e3,
            m.sla_attainment * 100.0,
            m.full_precision_share * 100.0,
        );
    }

    let goodput = |control_prefix: &str| {
        report
            .cells
            .iter()
            .find(|c| c.control.starts_with(control_prefix))
            .expect("cell exists")
            .metrics
            .goodput_rps
    };
    let (stat, adap) = (goodput("static"), goodput("adaptive"));

    // Pre-overload fidelity needs raw records, which report cells don't
    // carry — replay the adaptive cell through the low-level API. The
    // goodput cross-check below fails if this replay ever drifts from the
    // scenario cell's configuration.
    let outcome = run_serving_adaptive(
        &accel,
        &dram,
        policy,
        cluster,
        &traffic,
        &spec,
        ServiceModel::Deterministic,
        // The scenario seeds arrivals per traffic entry; traffic index 0
        // under the scenario seed reproduces identical arrivals.
        bpvec::serve::ServingScenario::mix_seed_for(seed, 0),
    );
    let raw =
        bpvec::serve::ServingMetrics::from_outcome(&outcome, cluster.replicas, 0, Some(sla_s));
    assert!(
        (raw.goodput_rps - adap).abs() <= 1e-9 * adap.max(1.0),
        "raw replay ({:.3} rps) must reproduce the scenario's adaptive cell ({adap:.3} rps)",
        raw.goodput_rps
    );
    let pre: Vec<_> = outcome
        .records
        .iter()
        .filter(|r| r.arrival_s < t_step)
        .collect();
    let pre_full = pre.iter().filter(|r| r.rung == 0).count();
    let pre_share = pre_full as f64 / pre.len() as f64;
    println!(
        "\n2x step overload: static-8b goodput = {stat:.1} rps, adaptive = {adap:.1} rps \
         ({:.1}x); pre-overload full-precision share = {:.1}% \
         ({} switches, {:.0}% of time degraded)",
        adap / stat,
        pre_share * 100.0,
        outcome.policy_switches.len(),
        (1.0 - outcome.rung_time_s[0] / outcome.active_integral_s) * 100.0,
    );
    assert!(
        adap >= 2.0 * stat,
        "adaptive goodput {adap:.1} must be at least 2x static-8b {stat:.1}"
    );
    assert!(
        pre_share >= 0.80,
        "pre-overload full-precision share {pre_share:.3} must stay >= 0.80"
    );

    // Replay a harsher overload on a 1→3 autoscaled cluster under a trace
    // sink. The burst runs at 4× the single-replica static-8b capacity, so
    // even a fully recruited 3-replica cluster cannot hold it at 8-bit:
    // the autoscaler and the precision ladder must both engage, and the
    // trace must carry the full request lifecycle plus both kinds of
    // control-plane instants.
    let gaps4: Vec<f64> = std::iter::repeat_n(lo_gap, n_pre)
        .chain(std::iter::repeat_n(1.0 / (4.0 * cap0), n_over))
        .chain(std::iter::repeat_n(lo_gap, n_post))
        .collect();
    let traffic4 = TrafficSpec::new(
        "step-4x",
        ArrivalProcess::trace(gaps4),
        RequestMix::single(w.clone()),
        (n_pre + n_over + n_post) as u64,
    );
    let autoscaled = spec.clone().with_autoscaler(AutoscalerConfig::new(1, 3));
    let sink = MemorySink::new();
    let outcome3 = run_serving_adaptive_traced(
        &accel,
        &dram,
        policy,
        cluster,
        &traffic4,
        &autoscaled,
        ServiceModel::Deterministic,
        bpvec::serve::ServingScenario::mix_seed_for(seed, 0),
        &sink,
    );
    let mut active = 1i64;
    let mut peak = active;
    for e in &outcome3.scale_events {
        active += if e.up { 1 } else { -1 };
        peak = peak.max(active);
    }
    let events = sink.take();
    validate_spans(&events).expect("every exec span opens and closes in order");
    let named = |name: &str| events.iter().filter(|e| e.name == name).count();
    println!(
        "\nautoscaled replay (1..=3 replicas): peak {peak} active, {} scale events, \
         {} rung switches; trace = {} events ({} exec spans, {} queue-depth samples)",
        outcome3.scale_events.len(),
        outcome3.policy_switches.len(),
        events.len(),
        events.iter().filter(|e| e.ph == Phase::Begin).count(),
        named("queue_depth"),
    );
    assert!(
        peak == 3,
        "the 2x burst must recruit all 3 replicas (peak {peak})"
    );
    for name in [
        "arrive",
        "exec",
        "queue",
        "complete",
        "queue_depth",
        "rung_switch",
        "scale_up",
    ] {
        assert!(named(name) > 0, "trace must contain `{name}` events");
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, bpvec::obs::to_chrome_json(&events)).expect("trace file is writable");
        println!("wrote Chrome trace to {path}");
    }
    println!("OK: adaptive ladder doubles SLA goodput and holds full precision until the burst");
}
