//! Serving basics: why dynamic batching exists.
//!
//! Run with `cargo run --release --example serving_basics`.
//!
//! Serves AlexNet (a CNN whose giant FC layers make batch-1 inference
//! weight-traffic-bound) from the BPVeC accelerator under rising Poisson
//! load, comparing three batch-formation policies. The backend's
//! `BatchRegime` batch costs are strongly sub-linear — per-inference
//! latency drops ~3× from batch 1 to 16, then worsens under tile spill —
//! so deadline-aware batching raises service capacity where immediate
//! dispatch melts down. The example asserts the headline result (dynamic
//! batching beats immediate dispatch on p99 at high load), so CI fails if
//! the serving stack regresses.

use bpvec::dnn::{BitwidthPolicy, NetworkId};
use bpvec::serve::{
    ArrivalProcess, BatchPolicy, ClusterSpec, RequestMix, ServingScenario, TrafficSpec,
};
use bpvec::sim::{AcceleratorConfig, BatchRegime, DramSpec, Evaluator, Workload};

fn main() {
    let accel = AcceleratorConfig::bpvec();
    let w = Workload::new(NetworkId::AlexNet, BitwidthPolicy::Homogeneous8);
    let net = w.build();
    let dram = DramSpec::ddr4();

    // The backend's batch economics: whole-batch cost is sub-linear until
    // the scratchpad tiles spill.
    println!("AlexNet on BPVeC + DDR4 — per-inference latency by batch size:");
    for b in [1u64, 4, 8, 16, 32] {
        let m = accel.evaluate(&w.clone().with_batching(BatchRegime::fixed(b)), &net, &dram);
        println!("  batch {b:>2}: {:>7.3} ms/inference", m.latency_s * 1e3);
    }
    let s1 = accel
        .evaluate(&w.clone().with_batching(BatchRegime::fixed(1)), &net, &dram)
        .latency_s;

    // Load points relative to the *unbatched* capacity 1/s1: the top one is
    // 20% past what immediate dispatch can serve at all.
    let report = ServingScenario::new("serving_basics")
        .platform(accel)
        .policy(BatchPolicy::immediate())
        .policy(BatchPolicy::fixed(8))
        .policy(BatchPolicy::deadline(16, 4.0 * s1))
        .cluster(ClusterSpec::single())
        .traffics([0.5, 0.9, 1.2].map(|rho| {
            TrafficSpec::new(
                format!("rho-{rho}"),
                ArrivalProcess::poisson(rho / s1),
                RequestMix::single(w.clone()),
                4_000,
            )
            .with_warmup(400)
        }))
        .seed(0x5EED)
        .run();

    println!(
        "\n{:<22} {:>8} {:>10} {:>10} {:>10} {:>7}",
        "policy", "load", "p50 ms", "p99 ms", "thr rps", "batch"
    );
    for cell in &report.cells {
        let m = &cell.metrics;
        println!(
            "{:<22} {:>8} {:>10.2} {:>10.2} {:>10.1} {:>7.2}",
            cell.policy.to_string(),
            cell.traffic,
            m.latency.p50_s * 1e3,
            m.latency.p99_s * 1e3,
            m.throughput_rps,
            m.mean_batch,
        );
    }

    // The acceptance check: at the highest load, dynamic batching must beat
    // immediate dispatch on p99 latency.
    let p99 = |policy: &str| {
        report
            .cells
            .iter()
            .find(|c| c.policy.to_string().starts_with(policy) && c.traffic == "rho-1.2")
            .expect("cell exists")
            .metrics
            .latency
            .p99_s
    };
    let (imm, dyn_) = (p99("immediate"), p99("deadline"));
    println!(
        "\nhigh load (1.2x unbatched capacity): immediate p99 = {:.1} ms, \
         deadline-batched p99 = {:.1} ms ({:.0}x better)",
        imm * 1e3,
        dyn_ * 1e3,
        imm / dyn_
    );
    assert!(
        dyn_ < imm,
        "dynamic batching must beat immediate dispatch on p99 at high load"
    );
    println!("OK: dynamic batching beats immediate dispatch on p99 at high load");
}
