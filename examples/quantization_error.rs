//! Quantization-error study: the algorithmic premise behind heterogeneous
//! bitwidths.
//!
//! Run with `cargo run --example quantization_error`.
//!
//! The paper leans on the quantization literature (PACT, WRPN, QNN) for the
//! claim that sub-8-bit layers preserve accuracy. This example makes the
//! numeric side of that premise concrete: it quantizes a synthetic
//! fully-connected layer at every width 2..=8, runs every output neuron's
//! dot product through the bit-true CVU, and reports the normalized RMS
//! error versus the float computation — the graceful error growth that
//! makes 4-bit inner layers viable while 8-bit boundary layers protect the
//! ends.

use bpvec::core::{BitWidth, Cvu, CvuConfig, Signedness};
use bpvec::dnn::quant::quantize_fitted;

fn synth(n: usize, a: usize, b: usize, scale: f32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let u = ((i * a % 10_007) as f32 / 10_007.0) - 0.5;
            let v = ((i * b % 9973) as f32 / 9973.0) - 0.5;
            (u + v) * scale
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n_in, n_out) = (512usize, 64usize);
    let xs_f = synth(n_in, 2654435761 % 100000, 40503, 1.4);
    let ws_f = synth(n_in * n_out, 97, 193, 0.6);

    // Float reference outputs.
    let exact: Vec<f64> = (0..n_out)
        .map(|o| {
            xs_f.iter()
                .zip(&ws_f[o * n_in..(o + 1) * n_in])
                .map(|(&x, &w)| f64::from(x) * f64::from(w))
                .sum()
        })
        .collect();
    let rms_exact = (exact.iter().map(|v| v * v).sum::<f64>() / n_out as f64).sqrt();

    let cvu = Cvu::new(CvuConfig::paper_default());
    println!("synthetic FC layer {n_in} -> {n_out}, float output RMS {rms_exact:.3}\n");
    println!(
        "{:>5} {:>16} {:>16} {:>14}",
        "bits", "norm RMS error", "cycles/output", "vs 8-bit cycles"
    );
    let mut cycles_8 = 0u64;
    for bits in (2..=8).rev() {
        let bw = BitWidth::new(bits)?;
        let (xq, xp) = quantize_fitted(&[n_in], &xs_f, bw, Signedness::Signed);
        let (wq_all, wp) = quantize_fitted(&[n_out, n_in], &ws_f, bw, Signedness::Signed);
        let scale = f64::from(xp.scale) * f64::from(wp.scale);
        let mut err_sq = 0.0f64;
        let mut cycles = 0u64;
        for (o, expect) in exact.iter().enumerate() {
            let row = &wq_all.as_slice()[o * n_in..(o + 1) * n_in];
            let out = cvu.dot_product(xq.as_slice(), row, bw, bw, Signedness::Signed)?;
            cycles += out.cycles;
            let dequant = out.value as f64 * scale;
            err_sq += (dequant - expect).powi(2);
        }
        let nrmse = (err_sq / n_out as f64).sqrt() / rms_exact;
        if bits == 8 {
            cycles_8 = cycles;
        }
        println!(
            "{:>5} {:>15.2}% {:>16.1} {:>13.2}x",
            bits,
            100.0 * nrmse,
            cycles as f64 / n_out as f64,
            cycles_8 as f64 / cycles as f64
        );
    }
    println!("\nerror grows gracefully down to ~4 bits while cycles fall 4x —");
    println!("the accuracy/efficiency tradeoff heterogeneous bitwidths exploit");
    Ok(())
}
