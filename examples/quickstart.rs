//! Quickstart: bit-parallel vector composability in five minutes.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Builds the paper's Composable Vector Unit (16 NBVEs × 16 lanes of
//! 2-bit × 2-bit multipliers), executes dot-products in the homogeneous and
//! heterogeneous modes, and shows the throughput scaling that motivates the
//! whole design.

use bpvec::core::{BitWidth, Cvu, CvuConfig, Signedness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's design point (§III-A).
    let cvu = Cvu::new(CvuConfig::paper_default());
    println!(
        "CVU: {} NBVEs x {} lanes of {} multipliers ({} total)",
        cvu.config().num_nbves,
        cvu.config().lanes,
        cvu.config().slice_width,
        cvu.config().total_multipliers()
    );

    // A 512-element signed 8-bit dot product — all 16 NBVEs cooperate.
    let xs: Vec<i32> = (0..512).map(|i| (i * 37 % 255) - 127).collect();
    let ws: Vec<i32> = (0..512).map(|i| (i * 91 % 255) - 127).collect();
    let out = cvu.dot_product(&xs, &ws, BitWidth::INT8, BitWidth::INT8, Signedness::Signed)?;
    let exact: i64 = xs.iter().zip(&ws).map(|(&x, &w)| x as i64 * w as i64).sum();
    println!("\n8b x 8b, 512 elements:");
    println!(
        "  result {} (exact {exact}), {} cycles",
        out.value, out.cycles
    );
    assert_eq!(out.value, exact);

    // Same vectors quantized to 4 bits: the CVU recomposes into 4 clusters
    // and finishes 4x sooner on the same silicon.
    let xs4: Vec<i32> = xs.iter().map(|&v| v / 16).collect();
    let ws4: Vec<i32> = ws.iter().map(|&v| v / 16).collect();
    let out4 = cvu.dot_product(
        &xs4,
        &ws4,
        BitWidth::INT4,
        BitWidth::INT4,
        Signedness::Signed,
    )?;
    println!("\n4b x 4b, 512 elements:");
    println!(
        "  {} cycles ({}x fewer), {} clusters in parallel",
        out4.cycles,
        out.cycles / out4.cycles,
        out4.composition.clusters()
    );

    // The extreme: 2-bit weights against 8-bit activations (Figure 3c).
    let ws2: Vec<i32> = ws.iter().map(|&v| (v / 64).clamp(-2, 1)).collect();
    let out82 = cvu.dot_product(
        &xs,
        &ws2,
        BitWidth::INT8,
        BitWidth::INT2,
        Signedness::Signed,
    )?;
    println!("\n8b x 2b, 512 elements:");
    println!(
        "  {} cycles, {} clusters of {} NBVEs",
        out82.cycles,
        out82.composition.clusters(),
        out82.composition.nbves_per_cluster()
    );
    let exact82: i64 = xs
        .iter()
        .zip(&ws2)
        .map(|(&x, &w)| x as i64 * w as i64)
        .sum();
    assert_eq!(out82.value, exact82);

    println!("\nevery result is bit-true against exact integer arithmetic");
    Ok(())
}
