//! Driving the accelerator through its instruction set.
//!
//! Run with `cargo run --example isa_program`.
//!
//! Lowers a ResNet-style layer to the BPVeC instruction stream (tile DMA,
//! `setp` recomposition, blocked GEMMs), prints the assembly, executes it on
//! the instruction-level machine model, and shows how one `setp` — the
//! architectural form of bit-parallel vector composability — changes the
//! cycle count of the *same* loop nest.

use bpvec::core::BitWidth;
use bpvec::dnn::layer::{Layer, LayerKind};
use bpvec::isa::{lower_layer, Machine, MachineConfig};

fn main() {
    let layer = Layer::new(
        "layer2.0.conv1",
        LayerKind::Conv2d {
            in_channels: 64,
            out_channels: 128,
            kernel: (3, 3),
            stride: (2, 2),
            padding: (1, 1),
            input_hw: (56, 56),
        },
    );
    let working = 57_344; // half of the 112 KB scratchpad
    let program = lower_layer(&layer, working, 1);

    println!("{} instructions for {}:", program.len(), layer.name);
    for inst in program.instructions.iter().take(8) {
        println!("  {inst}");
    }
    println!("  ... ({} more)", program.len().saturating_sub(8));
    println!(
        "\nprogram totals: {} MACs, {:.1} KB of DMA",
        program.matmul_macs(),
        program.dma_bytes() as f64 / 1024.0
    );

    // Execute at 8-bit, then requantized to 4-bit: same loop nest, one
    // different setp, 4x the throughput.
    let cfg = MachineConfig::bpvec_ddr4();
    let r8 = Machine::run_fresh(cfg, &program);
    let layer4 = layer.with_bits(BitWidth::INT4, BitWidth::INT4);
    let p4 = lower_layer(&layer4, working, 1);
    let r4 = Machine::run_fresh(cfg, &p4);
    println!("\nexecution on BPVeC + DDR4:");
    println!(
        "  8b x 8b: {:>10.0} cycles ({:.0}% compute-busy)",
        r8.cycles,
        100.0 * r8.compute_cycles / r8.cycles
    );
    println!(
        "  4b x 4b: {:>10.0} cycles ({:.2}x faster, {:.1} KB less DMA)",
        r4.cycles,
        r8.cycles / r4.cycles,
        (r8.traffic_bytes - r4.traffic_bytes) as f64 / 1024.0
    );
    println!(
        "\nthe binary encoding round-trips: {} words",
        program.encode().len()
    );
}
