//! Hardware design-space exploration beyond the paper's Figure 4.
//!
//! Run with `cargo run --example design_space`.
//!
//! Sweeps slice width × NBVE vector length over a wider grid than the paper
//! (L up to 64, slice widths 1/2/4) and reports power/area per 8-bit MAC
//! normalized to the conventional unit, plus the composition utilization at
//! each operand bitwidth — the tradeoff that makes 2-bit the sweet spot.

use bpvec::core::{BitWidth, Composition, SliceWidth};
use bpvec::hwmodel::dse::{evaluate, DesignPoint};
use bpvec::hwmodel::TechnologyProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechnologyProfile::nm45();
    println!("power/area per 8b MAC (normalized to conventional MAC):");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "slice", "L=1", "L=2", "L=4", "L=8", "L=16", "L=32", "L=64"
    );
    for s in [1u32, 2, 4] {
        let row: Vec<String> = [1u32, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&l| {
                let p = evaluate(
                    DesignPoint {
                        slice_bits: s,
                        lanes: l,
                    },
                    &tech,
                );
                format!("{:.2}", p.norm_power)
            })
            .collect();
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            format!("{s}-bit"),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5],
            row[6]
        );
    }

    println!("\neffective compute utilization per operand bitwidth (paper §III-B(3)):");
    println!("(achieved throughput multiplier / ideal (8/bx)(8/bw) multiplier)");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "slice", "8bx8b", "8bx4b", "4bx4b", "3bx3b", "2bx2b"
    );
    for s in [1u32, 2, 4] {
        let sw = SliceWidth::new(s)?;
        let n = sw.slices_for(BitWidth::INT8) as usize;
        let total = n * n;
        let mut cells = Vec::new();
        for (bx, bw) in [(8u32, 8u32), (8, 4), (4, 4), (3, 3), (2, 2)] {
            let c = Composition::plan(total, sw, BitWidth::new(bx)?, BitWidth::new(bw)?)?;
            let ideal = (8.0 / bx as f64) * (8.0 / bw as f64);
            let achieved = c.throughput_multiplier() as f64;
            cells.push(format!(
                "{:.0}%",
                100.0 * achieved / ideal * c.utilization()
            ));
        }
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            format!("{s}-bit"),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }
    println!("\n4-bit slicing wastes the array below 4-bit operands; 1-bit slicing");
    println!("never recovers its aggregation cost: 2-bit is the balance the paper picks");
    Ok(())
}
