//! Per-layer precision as a sweep axis: the paper's core result — compute
//! throughput scaling as layers drop from 8-bit toward 2-bit — as a
//! first-class experiment through both `Scenario` and `ServingScenario`.
//!
//! ```text
//! cargo run --release --example precision_sweep            # 8b, 6b, 4b, 2b
//! cargo run --release --example precision_sweep int8 int4 2b
//! ```
//!
//! Widths parse via `BitWidth`'s `FromStr` (`"8"`, `"8b"`, `"int8"`), so
//! the same spellings work here and in CSV output.

use bpvec::core::BitWidth;
use bpvec::dnn::{BitwidthPolicy, NetworkId, PrecisionPolicy};
use bpvec::serve::{
    ArrivalProcess, BatchPolicy, ClusterSpec, RequestMix, ServingScenario, TrafficSpec,
};
use bpvec::sim::{AcceleratorConfig, DramSpec, Scenario, Workload};

fn main() {
    // Precision axis from CLI args ("int4", "2b", "8"), or the canonical
    // 8 → 2 bit descent. The sweep always runs widest → narrowest (the
    // monotonicity checks below rely on it), so the args are deduplicated
    // and sorted descending regardless of the order given.
    let mut widths: Vec<BitWidth> = std::env::args()
        .skip(1)
        .map(|arg| {
            arg.parse::<BitWidth>()
                .unwrap_or_else(|e| panic!("argument `{arg}`: {e}"))
        })
        .collect();
    widths.sort_unstable_by(|a, b| b.cmp(a));
    widths.dedup();
    let precisions = if widths.is_empty() {
        PrecisionPolicy::paper_sweep()
    } else {
        PrecisionPolicy::uniform_sweep(widths)
    };

    // --- Scenario: throughput vs precision on the composable design -----
    let report = Scenario::new("precision sweep")
        .platform(AcceleratorConfig::tpu_like())
        .platform(AcceleratorConfig::bpvec())
        .memory(DramSpec::hbm2())
        .workload(Workload::new(
            NetworkId::ResNet50,
            BitwidthPolicy::Homogeneous8,
        ))
        .workload(Workload::new(NetworkId::Lstm, BitwidthPolicy::Homogeneous8))
        .precisions(precisions.clone())
        .run();

    println!("Throughput vs precision (HBM2), GOPS:");
    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "network", "precision", "TPU-like", "BPVeC"
    );
    let mut bpvec_resnet = Vec::new();
    for p in &precisions {
        for id in [NetworkId::ResNet50, NetworkId::Lstm] {
            let pick = |platform: &str| {
                report
                    .cells
                    .iter()
                    .find(|c| {
                        c.platform == platform
                            && c.workload.network == id
                            && c.workload.policy == *p
                    })
                    .expect("cell exists")
                    .measurement
                    .gops()
            };
            let (tpu, bp) = (pick("TPU-like"), pick("BPVeC"));
            println!(
                "{:<12} {:>12} {:>10.1} {:>10.1}",
                id.name(),
                p.to_string(),
                tpu,
                bp
            );
            if id == NetworkId::ResNet50 {
                bpvec_resnet.push(bp);
            }
        }
    }
    // The paper's scaling: the composable design's throughput rises
    // monotonically as layers narrow (the TPU-like baseline cannot).
    for pair in bpvec_resnet.windows(2) {
        assert!(
            pair[1] >= pair[0] * 0.9999999,
            "BPVeC throughput must not fall as precision drops: {bpvec_resnet:?}"
        );
    }
    if bpvec_resnet.len() >= 2 {
        let gain = bpvec_resnet.last().unwrap() / bpvec_resnet.first().unwrap();
        println!("\nBPVeC ResNet-50 throughput gain across the sweep: {gain:.2}x");
        let span = precisions
            .first()
            .unwrap()
            .min_weight_bits()
            .unwrap()
            .bits()
            - precisions.last().unwrap().min_weight_bits().unwrap().bits();
        // A narrow sweep (e.g. 8b -> 7b) changes no slice counts; only
        // demand a real payoff when the sweep spans >= 4 bits.
        assert!(
            span < 4 || gain > 1.5,
            "narrowing {span} bits should pay on the composable design: {gain:.2}x"
        );
    }
    println!("\nScenario CSV (policy column = precision):");
    print!("{}", report.to_csv());

    // --- ServingScenario: the same axis under load ----------------------
    let serving = ServingScenario::new("precision serving sweep")
        .platform(AcceleratorConfig::bpvec())
        .policy(BatchPolicy::deadline(16, 0.005))
        .cluster(ClusterSpec::single())
        .traffic(TrafficSpec::new(
            "steady",
            ArrivalProcess::poisson(300.0),
            RequestMix::single(Workload::new(
                NetworkId::ResNet50,
                BitwidthPolicy::Homogeneous8,
            )),
            2_000,
        ))
        .precisions(precisions)
        .sla_s(0.050)
        .run();

    println!("\nServing p99 vs precision (ResNet-50 @ 300 rps, deadline batching):");
    println!(
        "{:<12} {:>10} {:>12}",
        "precision", "p99 ms", "energy mJ/req"
    );
    let mut p99s = Vec::new();
    for cell in &serving.cells {
        println!(
            "{:<12} {:>10.3} {:>12.3}",
            cell.precision,
            cell.metrics.latency.p99_s * 1e3,
            cell.metrics.energy_per_request_j * 1e3,
        );
        p99s.push(cell.metrics.latency.p99_s);
    }
    // Narrower layers mean faster batches: the tail never worsens down the
    // sweep (paired arrivals make this comparison exact).
    for pair in p99s.windows(2) {
        assert!(
            pair[1] <= pair[0] * 1.0000001,
            "serving p99 must not rise as precision drops: {p99s:?}"
        );
    }
    println!("\nServing CSV (precision column):");
    print!("{}", serving.to_csv());
}
