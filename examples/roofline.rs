//! Roofline view of the whole evaluation.
//!
//! Run with `cargo run --example roofline`.
//!
//! Prints each workload's arithmetic intensity against each platform's
//! ridge point — the two numbers that predict every speedup in
//! Figures 5–8: a workload left of the ridge can't use BPVeC's extra
//! compute (RNN/LSTM on DDR4, Fig. 5), and moving the memory roof up
//! (HBM2, Fig. 6) or the compute roof sideways (quantization, Fig. 7)
//! is what unlocks it.

use bpvec::dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec::sim::{roofline, AcceleratorConfig, DramSpec};

fn main() {
    for (policy, label) in [
        (BitwidthPolicy::Homogeneous8, "homogeneous 8-bit"),
        (BitwidthPolicy::Heterogeneous, "heterogeneous bitwidths"),
    ] {
        println!("=== {label} ===");
        println!(
            "{:<14} {:>10} | {:>22} | {:>22}",
            "network", "MACs/byte", "TPU-like (ridge/bound)", "BPVeC (ridge/bound)"
        );
        for id in NetworkId::ALL {
            let net = Network::build(id, policy);
            let b = if id.is_recurrent() { 12 } else { 16 };
            let tpu = roofline(&net, &AcceleratorConfig::tpu_like(), &DramSpec::ddr4(), b);
            let bp = roofline(&net, &AcceleratorConfig::bpvec(), &DramSpec::ddr4(), b);
            let bound = |m: bool| if m { "memory" } else { "compute" };
            println!(
                "{:<14} {:>10.1} | {:>13.1} {:>8} | {:>13.1} {:>8}",
                id.name(),
                tpu.intensity_macs_per_byte,
                tpu.ridge_macs_per_byte,
                bound(tpu.memory_bound()),
                bp.ridge_macs_per_byte,
                bound(bp.memory_bound()),
            );
        }
        println!();
    }
    println!("DDR4 shown; HBM2 divides every ridge by 16, which is why Figure 6's");
    println!("BPVeC bars all reach the 2x compute ratio");
}
