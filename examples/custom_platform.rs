//! Bringing your own backend to the `Scenario` API.
//!
//! Run with `cargo run --example custom_platform`.
//!
//! The evaluation API is open: anything implementing
//! [`Evaluator`](bpvec::sim::Evaluator) drops into a scenario next to the
//! built-in ASIC simulator and the GPU model. This example adds two custom
//! platforms:
//!
//! * a simple analytical **vector CPU** (AVX-512-class server socket), to
//!   see where general-purpose silicon lands on the paper's workloads;
//! * a **scratchpad-doubled BPVeC** variant via [`Labeled`], the one-liner
//!   way to carry several configs of the same design in one scenario.
//!
//! The report then answers both questions in one run, normalized to the
//! stock BPVeC + DDR4.

use bpvec::dnn::{BitwidthPolicy, Network, NetworkId};
use bpvec::sim::{
    AcceleratorConfig, DramSpec, Evaluator, Labeled, Measurement, Scenario, Workload,
};

/// A deliberately simple vector-CPU model: peak INT8 MACs derated by a
/// per-class sustained-utilization factor, against a fixed socket power.
struct VectorCpu {
    peak_gmacs: f64,
    socket_power_w: f64,
}

impl VectorCpu {
    /// ~2 GHz × 32 cores × 2 FMA ports × 64 INT8 MACs ≈ 8 TMAC/s peak.
    fn server_socket() -> Self {
        VectorCpu {
            peak_gmacs: 8_000.0,
            socket_power_w: 205.0,
        }
    }
}

impl Evaluator for VectorCpu {
    fn label(&self) -> String {
        "Vector CPU".to_string()
    }

    fn evaluate(&self, workload: &Workload, network: &Network, _dram: &DramSpec) -> Measurement {
        // CNNs keep the vector units moderately busy; GEMV streams thrash.
        let util = if workload.network.is_recurrent() {
            0.02
        } else {
            0.25
        };
        let sustained = self.peak_gmacs * util;
        let macs = network.total_macs();
        let latency_s = macs as f64 / (sustained * 1e9);
        Measurement {
            latency_s,
            energy_j: latency_s * self.socket_power_w,
            macs,
            batch: workload.batch(),
            gops_per_watt: 2.0 * sustained / self.socket_power_w,
        }
    }
}

fn main() {
    let mut big_spad = AcceleratorConfig::bpvec();
    big_spad.scratchpad.capacity_bytes *= 2;

    let report = Scenario::new("custom platforms vs BPVeC")
        .platform(AcceleratorConfig::bpvec())
        .platform(Labeled::new("BPVeC-224K", big_spad))
        .platform(VectorCpu::server_socket())
        .memory(DramSpec::ddr4())
        .workloads(Workload::table1(BitwidthPolicy::Homogeneous8))
        .run();

    println!("{}\n", report.scenario);
    println!(
        "{:<14} {:>14} {:>14} {:>12}",
        "network", "BPVeC ms", "BPVeC-224K ms", "CPU ms"
    );
    for id in NetworkId::ALL {
        let ms = |p: &str| report.cell(p, "DDR4", id).unwrap().measurement.latency_s * 1e3;
        println!(
            "{:<14} {:>14.3} {:>14.3} {:>12.3}",
            id.name(),
            ms("BPVeC"),
            ms("BPVeC-224K"),
            ms("Vector CPU"),
        );
    }
    println!();
    for c in report.comparisons() {
        println!(
            "{:<22} {:>6.2}x speedup, {:>6.2}x energy vs {}",
            c.evaluated, c.geomean_speedup, c.geomean_energy, c.baseline
        );
    }
}
