//! Recurrent-network acceleration deep-dive (the paper's hardest workload).
//!
//! Run with `cargo run --example lstm_acceleration`.
//!
//! RNN/LSTM inference is a stream of GEMVs with almost no weight reuse, so
//! Figures 5-8 show them gaining nothing from extra compute on DDR4 and the
//! most from HBM2. This example reproduces that story end-to-end: a
//! bit-true quantized LSTM cell on the CVU arithmetic, then the
//! batch/bandwidth sensitivity of the full model.

use bpvec::core::{BitWidth, Signedness};
use bpvec::dnn::reference::{gemv, lstm_step};
use bpvec::dnn::{BitwidthPolicy, Network, NetworkId, Tensor};
use bpvec::sim::systolic::{ArrayConfig, SystolicArray};
use bpvec::sim::{simulate, AcceleratorConfig, BatchRegime, DramSpec, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A quantized LSTM cell whose gate GEMV runs bit-true on the array.
    let hidden = 32usize;
    let w = Tensor::from_fn(&[4 * hidden, 2 * hidden], |i| {
        ((i[0] * 31 + i[1] * 7) % 15) as i32 - 7
    });
    let x = Tensor::from_fn(&[hidden], |i| (i[0] % 15) as i32 - 7);
    let h = Tensor::zeros(&[hidden]);
    let c = Tensor::zeros(&[hidden]);

    // Gate pre-activations on the systolic array (as a [4H, 2H] x [2H, 1] GEMM).
    let mut xh = Vec::with_capacity(2 * hidden);
    xh.extend_from_slice(x.as_slice());
    xh.extend_from_slice(h.as_slice());
    let xh_t = Tensor::from_data(&[2 * hidden, 1], xh);
    let arr = SystolicArray::new(ArrayConfig::paper_default());
    let run = arr.gemm(
        &w,
        &xh_t,
        BitWidth::INT4,
        BitWidth::INT4,
        Signedness::Signed,
    )?;
    let mut expect = gemv(&w, {
        let mut flat = xh_t.clone();
        flat.reshape(&[2 * hidden]);
        &flat.clone()
    });
    expect.reshape(&[4 * hidden, 1]);
    assert_eq!(run.output, expect, "gate GEMV is bit-true on the array");
    println!(
        "LSTM gate GEMV ({}x{}): {} cycles on the CVU array, bit-true",
        4 * hidden,
        2 * hidden,
        run.cycles
    );
    let (h1, _c1) = lstm_step(&w, &x, &h, &c, 3, BitWidth::INT4);
    println!(
        "one full quantized LSTM step -> h[0..4] = {:?}",
        &h1.as_slice()[..4]
    );

    // 2. Why LSTM gains nothing from BPVeC on DDR4: bandwidth sensitivity.
    println!("\nLSTM end-to-end (2 layers, hidden 880, seq 512):");
    println!(
        "{:<10} {:<6} {:>14} {:>12} {:>12}",
        "design", "mem", "latency ms/inf", "mem-bound", "vs TPU-DDR4"
    );
    let net = Network::build(NetworkId::Lstm, BitwidthPolicy::Homogeneous8);
    let base = simulate(
        &net,
        &SimConfig::new(AcceleratorConfig::tpu_like(), DramSpec::ddr4()),
    );
    for accel in [AcceleratorConfig::tpu_like(), AcceleratorConfig::bpvec()] {
        for dram in [DramSpec::ddr4(), DramSpec::hbm2()] {
            let r = simulate(&net, &SimConfig::new(accel, dram));
            println!(
                "{:<10} {:<6} {:>14.2} {:>11.0}% {:>11.2}x",
                accel.design.name(),
                dram.name,
                r.latency_s * 1e3,
                100.0 * r.memory_bound_fraction(),
                base.latency_s / r.latency_s
            );
        }
    }

    // 3. Batch amortizes the weight stream.
    println!("\nbatch sensitivity (BPVeC + DDR4):");
    for batch in [1u64, 4, 12, 32, 128] {
        let mut cfg = SimConfig::new(AcceleratorConfig::bpvec(), DramSpec::ddr4());
        cfg.batching = BatchRegime::serving(16, batch);
        let r = simulate(&net, &cfg);
        println!(
            "  batch {batch:>3}: {:>8.2} ms/inf ({:>3.0}% memory-bound)",
            r.latency_s * 1e3,
            (100.0 * r.memory_bound_fraction()).max(0.0)
        );
    }
    println!("\nthe weight stream dominates until large batches: exactly the paper's");
    println!("\"starvation of the copious on-chip compute resources\" (Fig. 5 discussion)");
    Ok(())
}
