//! # BPVeC — Bit-Parallel Vector Composability for Neural Acceleration
//!
//! Umbrella crate for the Rust reproduction of Ghodrati et al., *"Bit-Parallel
//! Vector Composability for Neural Acceleration"*, DAC 2020
//! (arXiv:2004.05333).
//!
//! This crate re-exports the five subsystem crates:
//!
//! * [`core`] — bit-slicing algebra and the functional CVU/NBVE model.
//! * [`hwmodel`] — 45 nm gate-level area/power cost model (Figure 4 DSE).
//! * [`dnn`] — quantized-DNN workloads (Table I networks) and a reference
//!   integer inference engine.
//! * [`sim`] — the BPVeC accelerator simulator plus the TPU-like and
//!   BitFusion baselines (Figures 5–8).
//! * [`serve`] — the discrete-event inference-serving simulator: arrival
//!   processes, dynamic batching, sharded clusters, adaptive precision
//!   control with replica autoscaling, and tail-latency metrics over any
//!   `Evaluator` backend.
//! * [`isa`] — the accelerator's instruction set, the network→program
//!   lowering pass, and the instruction-level machine model.
//! * [`gpumodel`] — the RTX 2080 Ti analytical comparison model (Figure 9).
//! * [`obs`] — deterministic tracing (Chrome trace-event / Perfetto export),
//!   a thread-safe metrics registry, and wall-clock self-profiling; wired
//!   through the serving and scenario layers via their `.trace(..)`,
//!   `.metrics(..)`, and `.profile(..)` axes.
//!
//! ## Quickstart
//!
//! Compute an 8-bit × 2-bit dot-product on a composable vector unit and check
//! it against exact integer arithmetic:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use bpvec::core::{BitWidth, Cvu, CvuConfig, Signedness};
//!
//! let cvu = Cvu::new(CvuConfig::paper_default());
//! let xs: Vec<i32> = (0..64).map(|i| (i % 100) - 50).collect();
//! let ws: Vec<i32> = (0..64).map(|i| (i % 3) - 1).collect();
//! let out = cvu.dot_product(
//!     &xs,
//!     &ws,
//!     BitWidth::new(8)?,
//!     BitWidth::new(2)?,
//!     Signedness::Signed,
//! )?;
//! let expect: i64 = xs.iter().zip(&ws).map(|(&x, &w)| (x as i64) * (w as i64)).sum();
//! assert_eq!(out.value, expect);
//! # Ok(())
//! # }
//! ```

pub use bpvec_core as core;
pub use bpvec_dnn as dnn;
pub use bpvec_gpumodel as gpumodel;
pub use bpvec_hwmodel as hwmodel;
pub use bpvec_isa as isa;
pub use bpvec_obs as obs;
pub use bpvec_serve as serve;
pub use bpvec_sim as sim;
